package txline

import (
	"fmt"
	"math"

	"divot/internal/rng"
)

// Clone models the strongest physical attacker the PUF claim must survive:
// one who has stolen the enrolled fingerprint (the paper argues EPROM
// secrecy is not critical — §III) and fabricates a replica line, steering
// trace width over distance to approximate the victim's impedance profile.
//
// Fabrication has a spatial control limit: an attacker can hold an average
// impedance over a patterning window of some length, but cannot reproduce
// the sub-window inhomogeneity — that part comes out as fresh manufacturing
// randomness. CloneLine therefore low-passes the victim's profile at the
// attacker's control resolution and adds new intrinsic randomness beneath
// it. As the control window shrinks toward the iTDR's 0.837 mm resolution
// the clone gets better; the clone experiment quantifies how much margin
// remains.

// CloneSpec describes the attacker's fabrication capability.
type CloneSpec struct {
	// ControlResolution is the smallest length over which the attacker can
	// set the average impedance, in meters (e.g. 5 mm for careful manual
	// trace-width control, 1-2 mm for a custom fab run).
	ControlResolution float64
	// ResidualContrastRMS is the RMS of the uncontrollable sub-window
	// randomness the attacker's process adds, as a relative impedance
	// deviation. Physically bounded below by the same manufacturing
	// physics that gave the victim its IIP.
	ResidualContrastRMS float64
	// MatchTermination is whether the attacker also installs a termination
	// trimmed to the victim's measured value.
	MatchTermination bool
}

// DefaultCloneSpec is a capable attacker: 3 mm control, victim-grade
// residual randomness, trimmed termination.
func DefaultCloneSpec() CloneSpec {
	return CloneSpec{
		ControlResolution:   3e-3,
		ResidualContrastRMS: 0.010,
		MatchTermination:    true,
	}
}

// CloneLine fabricates the attacker's best replica of the victim.
func CloneLine(victim *Line, spec CloneSpec, stream *rng.Stream) *Line {
	if spec.ControlResolution <= 0 {
		panic(fmt.Sprintf("txline: non-positive clone resolution %v", spec.ControlResolution))
	}
	cfg := victim.cfg
	n := len(victim.baseZ)
	window := int(math.Round(spec.ControlResolution / cfg.SegmentLength))
	if window < 1 {
		window = 1
	}

	// The attacker reproduces the windowed average of the victim's profile.
	target := make([]float64, n)
	for start := 0; start < n; start += window {
		end := start + window
		if end > n {
			end = n
		}
		var avg float64
		for i := start; i < end; i++ {
			avg += victim.baseZ[i]
		}
		avg /= float64(end - start)
		for i := start; i < end; i++ {
			target[i] = avg
		}
	}

	// Fresh sub-window randomness from the attacker's own process, with
	// the same spatial correlation physics as any manufactured line.
	resid := stream.Child("clone-residual")
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = resid.Gaussian(0, 1)
	}
	smooth := smoothProfile(raw, cfg.CorrelationLength/cfg.SegmentLength)
	var ss float64
	for _, v := range smooth {
		ss += v * v
	}
	rms := math.Sqrt(ss / float64(n))
	scale := 0.0
	if rms > 0 {
		scale = spec.ResidualContrastRMS / rms
	}

	baseZ := make([]float64, n)
	for i := range baseZ {
		baseZ[i] = target[i] + cfg.Z0*scale*smooth[i]
	}

	diff := make([]float64, n)
	tcStream := stream.Child("clone-tempdiff")
	for i := range diff {
		diff[i] = tcStream.Gaussian(0, cfg.TempCoeffDiffRMS)
	}
	term := DrawTermination(cfg, stream.Child("clone-term"))
	if spec.MatchTermination {
		term = victim.termZ
	}
	return &Line{
		cfg:     cfg,
		id:      victim.id + "-clone",
		baseZ:   baseZ,
		diffTC:  diff,
		termZ:   term,
		perturb: make(map[string]Perturbation),
	}
}
