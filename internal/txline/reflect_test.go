package txline

import (
	"math"
	"testing"
	"testing/quick"

	"divot/internal/rng"
	"divot/internal/signal"
)

const (
	testRate = 89.6e9 // 1/11.16ps, the ETS-equivalent rate
	testN    = 360    // covers ~4 ns, a bit past the 3.33 ns round trip
)

func reflectAt(l *Line, deltaT, stretch float64) *signal.Waveform {
	return l.Reflect(DefaultProbe(), deltaT, stretch, testRate, testN)
}

func TestReflectDeterministic(t *testing.T) {
	l := testLine("L", 10)
	a := reflectAt(l, 0, 1)
	b := reflectAt(l, 0, 1)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("reflection synthesis should be deterministic")
		}
	}
}

func TestReflectionIsSmall(t *testing.T) {
	// Back-reflections from percent-level inhomogeneity must be far below
	// the incident amplitude — the paper stresses SNR below 1.
	l := testLine("L", 11)
	w := reflectAt(l, 0, 1)
	if peak := signal.MaxAbs(w); peak > 0.1*DefaultProbe().Amplitude {
		t.Errorf("reflection peak %v too large vs incident %v", peak, DefaultProbe().Amplitude)
	}
	if signal.Energy(w) == 0 {
		t.Error("reflection should be nonzero")
	}
}

func TestPassivity(t *testing.T) {
	// The reflected waveform must never exceed the incident amplitude:
	// the line is a passive structure.
	f := func(seed uint64) bool {
		l := New("p", DefaultConfig(), rng.New(seed))
		w := reflectAt(l, 0, 1)
		return signal.MaxAbs(w) < DefaultProbe().Amplitude
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func derivative(w *signal.Waveform) *signal.Waveform {
	d := signal.New(w.Rate, w.Len()-1)
	for i := range d.Samples {
		d.Samples[i] = w.Samples[i+1] - w.Samples[i]
	}
	return d
}

func TestDistinctLinesHaveDistinctReflections(t *testing.T) {
	a := reflectAt(testLine("A", 20), 0, 1)
	b := reflectAt(testLine("B", 21), 0, 1)
	// Raw step responses share macroscopic features (termination step at a
	// fixed position), so some correlation remains; it must still be well
	// below a genuine match.
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(a), signal.RemoveMean(b))
	if sim > 0.95 {
		t.Errorf("distinct lines correlate at %v; IIPs should differ", sim)
	}
	// The local-reflectivity view (derivative) isolates the intrinsic
	// inhomogeneity and must decorrelate almost completely.
	dsim := signal.NormalizedInnerProduct(derivative(a), derivative(b))
	if math.Abs(dsim) > 0.4 {
		t.Errorf("distinct lines' reflectivity profiles correlate at %v", dsim)
	}
}

func TestSameLineReflectionsMatch(t *testing.T) {
	l := testLine("L", 22)
	a := reflectAt(l, 0, 1)
	b := reflectAt(l, 0.2, 1) // tiny ambient drift
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(a), signal.RemoveMean(b))
	if sim < 0.99 {
		t.Errorf("same line under tiny drift correlates at only %v", sim)
	}
}

func TestTerminationChangeShowsAtLineEnd(t *testing.T) {
	l := testLine("L", 23)
	before := reflectAt(l, 0, 1)
	l.SetTermination(110) // Trojan chip with very different input impedance
	after := reflectAt(l, 0, 1)
	diff := signal.Sub(after, before)
	peakIdx, _ := signal.PeakIndex(diff)
	peakTime := diff.TimeOf(peakIdx)
	rt := l.RoundTripTime()
	// Localization precision is limited by the probe rise time (~120 ps) —
	// the step difference saturates a couple of rise times after arrival.
	if peakTime < rt-0.1e-9 || peakTime > rt+0.4e-9 {
		t.Errorf("termination-change peak at %v s, want near round trip %v s", peakTime, rt)
	}
	// Before the round-trip time the waveform must be (nearly) unchanged.
	early := diff.Slice(0, int(0.8*rt*testRate))
	if signal.MaxAbs(early) > 1e-12 {
		t.Errorf("termination change leaked into early samples: %v", signal.MaxAbs(early))
	}
}

func TestMidlinePerturbationLocalized(t *testing.T) {
	l := testLine("L", 24)
	before := reflectAt(l, 0, 1)
	pos := 0.10
	l.ApplyPerturbation("probe", Perturbation{Position: pos, Extent: 2e-3, DeltaZ: 3})
	after := reflectAt(l, 0, 1)
	diff := signal.Sub(after, before)
	peakIdx, _ := signal.PeakIndex(diff)
	peakPos := l.TimeToPosition(diff.TimeOf(peakIdx))
	if math.Abs(peakPos-pos) > 0.01 {
		t.Errorf("perturbation localized at %v m, want ~%v m", peakPos, pos)
	}
}

func TestStretchMovesTerminationReflection(t *testing.T) {
	l := testLine("L", 25)
	l.SetTermination(100) // strong, easily tracked feature
	a := reflectAt(l, 0, 1)
	b := reflectAt(l, 0, 1.01)
	// The termination step is the dominant feature; locate it via the
	// difference against an unterminated-window baseline: compare where the
	// last big change happens. Simpler: the waveforms should disagree most
	// near the (moved) termination edge.
	diff := signal.Sub(a, b)
	idx, _ := signal.PeakIndex(diff)
	rt := l.RoundTripTime()
	if math.Abs(diff.TimeOf(idx)-rt)/rt > 0.1 {
		t.Errorf("stretch difference peaks at %v, want near %v", diff.TimeOf(idx), rt)
	}
}

func TestSecondOrderEchoSmall(t *testing.T) {
	l := testLine("L", 26)
	l.SetTermination(100)
	p := DefaultProbe()
	p.SecondOrder = true
	n := int(2.2 * l.RoundTripTime() * testRate)
	with := l.Reflect(p, 0, 1, testRate, n)
	p.SecondOrder = false
	without := l.Reflect(p, 0, 1, testRate, n)
	diff := signal.Sub(with, without)
	idx, _ := signal.PeakIndex(diff)
	// Echo arrives at twice the round trip (localized to within a rise time).
	if math.Abs(diff.TimeOf(idx)-2*l.RoundTripTime()) > 0.4e-9 {
		t.Errorf("echo at %v, want ~%v", diff.TimeOf(idx), 2*l.RoundTripTime())
	}
	if signal.MaxAbs(diff) > 0.1*signal.MaxAbs(with) {
		t.Error("second-order echo should be a small correction")
	}
}

func TestLossAttenuatesFarReflections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossDBPerMeter = 0
	noLoss := New("L", cfg, rng.New(27))
	cfg.LossDBPerMeter = 20
	lossy := New("L", cfg, rng.New(27))
	a := reflectAt(noLoss, 0, 1)
	b := reflectAt(lossy, 0, 1)
	// Compare the energy of the far half of the waveform: loss must reduce it.
	half := testN / 2
	ea := signal.Energy(a.Slice(half, testN))
	eb := signal.Energy(b.Slice(half, testN))
	if eb >= ea {
		t.Errorf("far-end energy with loss (%v) should be below lossless (%v)", eb, ea)
	}
}
