package txline

import (
	"math"
	"testing"

	"divot/internal/rng"
)

func testLine(id string, seed uint64) *Line {
	return New(id, DefaultConfig(), rng.New(seed))
}

func TestNewDeterministic(t *testing.T) {
	a := testLine("L", 1)
	b := testLine("L", 1)
	for i := 0; i < a.Segments(); i++ {
		if a.baseZ[i] != b.baseZ[i] {
			t.Fatal("same seed should reproduce the same IIP")
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := testLine("L", 1)
	b := testLine("L", 2)
	same := 0
	for i := 0; i < a.Segments(); i++ {
		if a.baseZ[i] == b.baseZ[i] {
			same++
		}
	}
	if same > a.Segments()/10 {
		t.Errorf("%d/%d identical segments across seeds", same, a.Segments())
	}
}

func TestProfileContrast(t *testing.T) {
	l := testLine("L", 3)
	cfg := l.Config()
	var ss float64
	for _, z := range l.baseZ {
		d := (z - cfg.Z0) / cfg.Z0
		ss += d * d
	}
	rms := math.Sqrt(ss / float64(l.Segments()))
	if math.Abs(rms-cfg.ContrastRMS)/cfg.ContrastRMS > 0.05 {
		t.Errorf("profile RMS contrast = %v, want ~%v", rms, cfg.ContrastRMS)
	}
}

func TestSegmentsAndGeometry(t *testing.T) {
	l := testLine("L", 4)
	cfg := l.Config()
	want := int(math.Round(cfg.Length / cfg.SegmentLength))
	if l.Segments() != want {
		t.Errorf("Segments = %d, want %d", l.Segments(), want)
	}
	rt := l.RoundTripTime()
	if math.Abs(rt-2*0.25/1.5e8) > 1e-15 {
		t.Errorf("RoundTripTime = %v", rt)
	}
	if got := l.TimeToPosition(l.PositionToTime(0.1)); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("position/time round trip = %v", got)
	}
}

func TestTermination(t *testing.T) {
	l := testLine("L", 5)
	cfg := DefaultConfig()
	// The termination is a per-chip draw around the nominal value.
	if d := math.Abs(l.Termination() - cfg.TerminationZ); d > 6*cfg.TerminationSpreadRMS {
		t.Errorf("initial termination %v implausibly far from nominal %v", l.Termination(), cfg.TerminationZ)
	}
	l.SetTermination(75)
	if l.Termination() != 75 {
		t.Errorf("termination after set = %v", l.Termination())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive termination")
		}
	}()
	l.SetTermination(0)
}

func TestPerturbationLifecycle(t *testing.T) {
	l := testLine("L", 6)
	p := Perturbation{Position: 0.1, Extent: 2e-3, DeltaZ: -10}
	l.ApplyPerturbation("tap", p)
	if !l.HasPerturbation("tap") {
		t.Error("perturbation not recorded")
	}
	z, _ := l.effectiveProfile(0)
	seg := int(0.1 / l.Config().SegmentLength)
	if math.Abs(z[seg]-(l.baseZ[seg]-10)) > 1e-9 {
		t.Errorf("perturbed segment %d = %v, want %v", seg, z[seg], l.baseZ[seg]-10)
	}
	l.RemovePerturbation("tap")
	if l.HasPerturbation("tap") {
		t.Error("perturbation not removed")
	}
	l.RemovePerturbation("never-there") // must be a no-op
}

func TestPerturbationOutOfRangePanics(t *testing.T) {
	l := testLine("L", 7)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range position")
		}
	}()
	l.ApplyPerturbation("bad", Perturbation{Position: 1.0})
}

func TestTemperatureCommonModeDominates(t *testing.T) {
	l := testLine("L", 8)
	z0, _ := l.effectiveProfile(0)
	z50, _ := l.effectiveProfile(50)
	cfg := l.Config()
	wantScale := 1 + cfg.TempCoeffCommon*50
	for i := range z0 {
		ratio := z50[i] / z0[i]
		// Common-mode scaling within the small differential drift budget.
		if math.Abs(ratio-wantScale) > 50*cfg.TempCoeffDiffRMS*5 {
			t.Fatalf("segment %d thermal ratio %v, want ~%v", i, ratio, wantScale)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := DefaultConfig()
	bad.Length = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero length")
		}
	}()
	New("x", bad, rng.New(1))
}
