// Package txline models PCB transmission lines at the level of detail the
// DIVOT architecture cares about: a per-segment characteristic-impedance
// profile (the Impedance Inhomogeneity Pattern, IIP), the back-reflection
// waveform that profile produces for a probing edge, environmental influences
// (temperature, vibration, EMI), and the perturbations physical attacks
// introduce.
//
// The model is first-order time-domain reflectometry: each boundary between
// segments of impedance Z_i and Z_{i+1} reflects a fraction
// Γ_i = (Z_{i+1}-Z_i)/(Z_{i+1}+Z_i) of the incident wave back to the source,
// delayed by the round-trip time to that boundary and attenuated by line
// loss. Summing the per-boundary step reflections makes the received
// waveform track the impedance profile over distance, which is exactly the
// property the paper's iTDR exploits (§II). An optional second-order term
// models the dominant multi-bounce echo (termination → source → termination).
package txline

import (
	"fmt"
	"math"

	"divot/internal/rng"
)

// Config describes the construction parameters of a transmission line.
type Config struct {
	// Length is the physical line length in meters (paper prototype: 0.25).
	Length float64
	// SegmentLength is the spatial discretization in meters. Sub-millimeter
	// segments match the iTDR's 0.837 mm spatial resolution.
	SegmentLength float64
	// Z0 is the nominal characteristic impedance in ohms (50).
	Z0 float64
	// ContrastRMS is the RMS relative impedance deviation of the intrinsic
	// inhomogeneity, e.g. 0.01 for 1 % manufacturing variation.
	ContrastRMS float64
	// CorrelationLength is the spatial correlation of the inhomogeneity in
	// meters; impedance wanders smoothly rather than jumping per segment.
	CorrelationLength float64
	// Velocity is the propagation velocity in m/s (paper: 15 cm/ns).
	Velocity float64
	// LossDBPerMeter is the one-way attenuation at the probing edge's
	// bandwidth.
	LossDBPerMeter float64
	// SourceZ is the driver output impedance in ohms.
	SourceZ float64
	// TerminationZ is the nominal receiver/termination impedance in ohms.
	TerminationZ float64
	// TerminationSpreadRMS is the chip-to-chip RMS spread of the input
	// impedance around TerminationZ. The paper's load-modification
	// experiment replaces the receiver with the *same model* chip and still
	// observes an IIP change at the load — same-model chips differ.
	TerminationSpreadRMS float64
	// TempCoeffCommon is the relative impedance change per °C that all
	// segments share (dielectric-constant rise lowers impedance, so this is
	// negative).
	TempCoeffCommon float64
	// TempCoeffDiffRMS is the RMS of the per-segment differential relative
	// impedance change per °C — the small part of thermal drift that does
	// not cancel in the IIP contrast.
	TempCoeffDiffRMS float64
	// ThermalStretchPerC is the relative propagation-delay increase per °C:
	// heating raises the laminate's dielectric constant, slowing the wave
	// and stretching every reflection's arrival time. This is the dominant
	// mechanism behind the genuine-distribution shift of Fig. 8.
	ThermalStretchPerC float64
}

// DefaultConfig returns the configuration matching the paper's prototype:
// a 25 cm, 50 Ω PCB trace probed at 156.25 MHz.
func DefaultConfig() Config {
	return Config{
		Length:               0.25,
		SegmentLength:        0.5e-3,
		Z0:                   50,
		ContrastRMS:          0.010,
		CorrelationLength:    5e-3,
		Velocity:             1.5e8,
		LossDBPerMeter:       0.8,
		SourceZ:              47,
		TerminationZ:         50.5,
		TerminationSpreadRMS: 1.0,
		TempCoeffCommon:      -2.0e-4,
		TempCoeffDiffRMS:     6.0e-6,
		ThermalStretchPerC:   4.7e-4,
	}
}

// PerturbKind classifies the physical nature of a local modification. The
// iTDR sees them all as impedance changes, but the baseline detectors of
// §V each respond to only one physical quantity — a capacitance-sensing
// ring oscillator cannot see an inductive probe, and a DC-resistance monitor
// cannot see either.
type PerturbKind int

const (
	// KindGeneric is an unclassified impedance change.
	KindGeneric PerturbKind = iota
	// KindCapacitive adds shunt capacitance (wire stubs, contact probes),
	// lowering the local impedance.
	KindCapacitive
	// KindInductive adds series inductance (magnetic near-field probes),
	// raising the local impedance.
	KindInductive
	// KindResistive changes the trace's series resistance (milling,
	// thinning, rerouting the copper).
	KindResistive
)

// Perturbation is a named local impedance modification applied to a line,
// used by attack models (wire taps, probes) and removable by name.
type Perturbation struct {
	// Position is the distance from the source in meters.
	Position float64
	// Extent is the affected length in meters.
	Extent float64
	// DeltaZ is the absolute impedance change in ohms over the extent.
	DeltaZ float64
	// Kind classifies the physical mechanism (for baseline sensors).
	Kind PerturbKind
}

// Line is one transmission line with its intrinsic impedance profile.
// A Line is not safe for concurrent mutation.
type Line struct {
	cfg     Config
	id      string
	baseZ   []float64 // intrinsic per-segment impedance at 23 °C
	diffTC  []float64 // per-segment differential temperature coefficients
	termZ   float64   // current termination impedance
	perturb map[string]Perturbation
}

// New builds a line with a fresh intrinsic impedance profile drawn from the
// given random stream. Lines built from identically seeded streams are
// identical; different seeds give statistically independent IIPs — the PUF
// property.
func New(id string, cfg Config, stream *rng.Stream) *Line {
	if cfg.Length <= 0 || cfg.SegmentLength <= 0 {
		panic(fmt.Sprintf("txline: invalid geometry %+v", cfg))
	}
	if cfg.Z0 <= 0 || cfg.Velocity <= 0 {
		panic(fmt.Sprintf("txline: invalid electrical parameters %+v", cfg))
	}
	n := int(math.Round(cfg.Length / cfg.SegmentLength))
	if n < 2 {
		n = 2
	}
	profile := stream.Child("iip-" + id)
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = profile.Gaussian(0, 1)
	}
	smooth := smoothProfile(raw, cfg.CorrelationLength/cfg.SegmentLength)
	// Renormalize to the requested RMS contrast.
	var ss float64
	for _, v := range smooth {
		ss += v * v
	}
	rms := math.Sqrt(ss / float64(n))
	scale := 0.0
	if rms > 0 {
		scale = cfg.ContrastRMS / rms
	}
	baseZ := make([]float64, n)
	for i, v := range smooth {
		baseZ[i] = cfg.Z0 * (1 + scale*v)
	}
	diff := make([]float64, n)
	tcStream := stream.Child("tempdiff-" + id)
	for i := range diff {
		diff[i] = tcStream.Gaussian(0, cfg.TempCoeffDiffRMS)
	}
	term := cfg.TerminationZ
	if cfg.TerminationSpreadRMS > 0 {
		term = DrawTermination(cfg, stream.Child("term-"+id))
	}
	return &Line{
		cfg:     cfg,
		id:      id,
		baseZ:   baseZ,
		diffTC:  diff,
		termZ:   term,
		perturb: make(map[string]Perturbation),
	}
}

// DrawTermination samples a chip input impedance for the given configuration:
// the nominal termination plus the chip-to-chip spread. Attack models use it
// to pick the impedance of a replacement (same-model) chip.
func DrawTermination(cfg Config, stream *rng.Stream) float64 {
	z := stream.Gaussian(cfg.TerminationZ, cfg.TerminationSpreadRMS)
	if z < 1 {
		z = 1
	}
	return z
}

// smoothProfile applies a moving-average of width w segments to introduce
// spatial correlation.
func smoothProfile(raw []float64, w float64) []float64 {
	width := int(math.Round(w))
	if width < 1 {
		width = 1
	}
	out := make([]float64, len(raw))
	var acc float64
	for i := range raw {
		acc += raw[i]
		if i >= width {
			acc -= raw[i-width]
		}
		count := width
		if i+1 < width {
			count = i + 1
		}
		out[i] = acc / float64(count)
	}
	return out
}

// ID returns the line's identifier.
func (l *Line) ID() string { return l.id }

// Config returns the construction parameters.
func (l *Line) Config() Config { return l.cfg }

// Segments returns the number of impedance segments.
func (l *Line) Segments() int { return len(l.baseZ) }

// RoundTripTime returns the total source-to-termination-and-back propagation
// time in seconds.
func (l *Line) RoundTripTime() float64 { return 2 * l.cfg.Length / l.cfg.Velocity }

// SetTermination replaces the termination impedance, as a chip replacement
// (Trojan insertion, cold-boot board swap) would.
func (l *Line) SetTermination(z float64) {
	if z <= 0 {
		panic(fmt.Sprintf("txline: non-positive termination %v", z))
	}
	l.termZ = z
}

// Termination returns the current termination impedance.
func (l *Line) Termination() float64 { return l.termZ }

// ApplyPerturbation adds or replaces a named local impedance modification.
func (l *Line) ApplyPerturbation(name string, p Perturbation) {
	if p.Position < 0 || p.Position > l.cfg.Length {
		panic(fmt.Sprintf("txline: perturbation position %v outside line of length %v",
			p.Position, l.cfg.Length))
	}
	l.perturb[name] = p
}

// RemovePerturbation removes the named modification. Removing an unknown
// name is a no-op, matching the semantics of detaching a probe that was
// never attached.
func (l *Line) RemovePerturbation(name string) { delete(l.perturb, name) }

// HasPerturbation reports whether the named modification is present.
func (l *Line) HasPerturbation(name string) bool {
	_, ok := l.perturb[name]
	return ok
}

// Perturbations returns a copy of the active modifications.
func (l *Line) Perturbations() []Perturbation {
	out := make([]Perturbation, 0, len(l.perturb))
	for _, p := range l.perturb {
		out = append(out, p)
	}
	return out
}

// ReplaceTail models cutting the line at pos and attaching a different
// electrical network there (an interposer, an active repeater): every
// segment beyond pos takes the replacement impedance z (a matched network
// presents a flat profile — no inhomogeneity to fingerprint) and the
// termination becomes z as well. The returned function restores the
// original tail and termination exactly — the attacker unplugging their
// device.
func (l *Line) ReplaceTail(pos, z float64) (restore func()) {
	if pos <= 0 || pos >= l.cfg.Length {
		panic(fmt.Sprintf("txline: tail cut at %v outside line of length %v", pos, l.cfg.Length))
	}
	if z <= 0 {
		panic(fmt.Sprintf("txline: non-positive replacement impedance %v", z))
	}
	seg := int(pos / l.cfg.SegmentLength)
	savedZ := append([]float64(nil), l.baseZ[seg:]...)
	savedTerm := l.termZ
	for i := seg; i < len(l.baseZ); i++ {
		l.baseZ[i] = z
	}
	l.termZ = z
	return func() {
		copy(l.baseZ[seg:], savedZ)
		l.termZ = savedTerm
	}
}

// PositionToTime converts a distance from the source into the round-trip
// time at which a reflection from that position arrives back at the source.
func (l *Line) PositionToTime(pos float64) float64 { return 2 * pos / l.cfg.Velocity }

// TimeToPosition converts a round-trip arrival time into the distance from
// the source of the reflecting feature.
func (l *Line) TimeToPosition(t float64) float64 { return t * l.cfg.Velocity / 2 }

// effectiveProfile computes the per-segment impedance under the given
// environment state (common thermal scaling, differential drift, and active
// perturbations) plus the effective termination. The returned slice is
// freshly allocated.
func (l *Line) effectiveProfile(deltaT float64) ([]float64, float64) {
	return l.effectiveProfileInto(nil, deltaT)
}

// effectiveProfileInto is effectiveProfile appending into a reusable scratch
// slice (pass scratch[:0] to recycle its storage).
func (l *Line) effectiveProfileInto(scratch []float64, deltaT float64) ([]float64, float64) {
	common := 1 + l.cfg.TempCoeffCommon*deltaT
	z := scratch
	if cap(z) < len(l.baseZ) {
		z = make([]float64, len(l.baseZ))
	} else {
		z = z[:len(l.baseZ)]
	}
	for i, base := range l.baseZ {
		z[i] = base * common * (1 + l.diffTC[i]*deltaT)
	}
	for _, p := range l.perturb {
		lo := int(p.Position / l.cfg.SegmentLength)
		hi := int((p.Position + p.Extent) / l.cfg.SegmentLength)
		if hi <= lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < len(z); i++ {
			if i >= 0 {
				z[i] += p.DeltaZ
			}
		}
	}
	return z, l.termZ * common
}
