package txline

import (
	"math"
	"testing"

	"divot/internal/rng"
	"divot/internal/signal"
)

// reflectReference is the original combined superposition loop (windowed erf
// plus per-event O(n) tail additions), kept verbatim as the bit-identity
// reference for the prefix-sum restructure in ReflectInto.
func reflectReference(l *Line, p Probe, deltaT, stretch float64, rate float64, n int) *signal.Waveform {
	stretch *= 1 + l.cfg.ThermalStretchPerC*deltaT
	z, term := l.effectiveProfileInto(nil, deltaT)
	segDt := 2 * l.cfg.SegmentLength / l.cfg.Velocity
	alpha := l.cfg.LossDBPerMeter * math.Ln10 / 20

	var events []reflectEvent
	for i := 0; i < len(z)-1; i++ {
		g := (z[i+1] - z[i]) / (z[i+1] + z[i])
		if g == 0 {
			continue
		}
		d := float64(i+1) * l.cfg.SegmentLength
		att := math.Exp(-2 * alpha * d)
		events = append(events, reflectEvent{t: float64(i+1) * segDt, a: g * att})
	}
	zLast := z[len(z)-1]
	gTerm := (term - zLast) / (term + zLast)
	attTerm := math.Exp(-2 * alpha * l.cfg.Length)
	tTerm := l.RoundTripTime()
	events = append(events, reflectEvent{t: tTerm, a: gTerm * attTerm})
	if p.SecondOrder {
		gSrc := (l.cfg.SourceZ - z[0]) / (l.cfg.SourceZ + z[0])
		echo := gTerm * gSrc * gTerm * math.Exp(-4*alpha*l.cfg.Length)
		events = append(events, reflectEvent{t: 2 * tTerm, a: echo})
	}

	out := signal.New(rate, n)
	sigma := p.RiseTime / 2.563
	window := 5 * sigma
	for _, ev := range events {
		tEv := ev.t * stretch
		amp := p.Amplitude * ev.a
		loIdx := int((tEv - window) * rate)
		hiIdx := int((tEv+window)*rate) + 1
		if loIdx < 0 {
			loIdx = 0
		}
		if hiIdx > n {
			hiIdx = n
		}
		for i := loIdx; i < hiIdx; i++ {
			t := float64(i)/rate - tEv
			out.Samples[i] += amp * 0.5 * (1 + math.Erf(t/(sigma*math.Sqrt2)))
		}
		for i := hiIdx; i < n; i++ {
			out.Samples[i] += amp
		}
	}
	return out
}

// TestReflectIntoMatchesReference proves the prefix-sum tail restructure is
// bitwise identical to the original superposition across temperatures,
// strains, probe shapes, and perturbed profiles.
func TestReflectIntoMatchesReference(t *testing.T) {
	l := New("prefix-test", DefaultConfig(), rng.New(7).Child("line"))
	l.ApplyPerturbation("probe-a", Perturbation{Position: 0.08, Extent: 0.02, DeltaZ: 4.2})
	l.ApplyPerturbation("probe-b", Perturbation{Position: 0.19, Extent: 0.005, DeltaZ: -9.1})

	probes := []Probe{
		DefaultProbe(),
		{RiseTime: 120e-12, Amplitude: 0.9, SecondOrder: false},
		{RiseTime: 480e-12, Amplitude: 0.4, SecondOrder: true},
	}
	conds := []struct{ deltaT, stretch float64 }{
		{0, 1}, {12.5, 1}, {-8, 1.0003}, {35, 0.9991}, {3.3, 1.2},
	}
	var scratch ReflectScratch
	for pi, p := range probes {
		for ci, c := range conds {
			want := reflectReference(l, p, c.deltaT, c.stretch, 89.6e9, 343)
			got := l.ReflectInto(&scratch, p, c.deltaT, c.stretch, 89.6e9, 343)
			if got.Len() != want.Len() {
				t.Fatalf("probe %d cond %d: length %d != %d", pi, ci, got.Len(), want.Len())
			}
			for i := range want.Samples {
				if math.Float64bits(got.Samples[i]) != math.Float64bits(want.Samples[i]) {
					t.Fatalf("probe %d cond %d: sample %d differs: got %x want %x",
						pi, ci, i, math.Float64bits(got.Samples[i]), math.Float64bits(want.Samples[i]))
				}
			}
		}
	}
}
