package txline

import (
	"math"

	"divot/internal/rng"
)

// Environment models the ambient conditions under which a measurement is
// taken. The zero value is the calibration environment: 23 °C, no vibration,
// no EMI.
type Environment struct {
	// TempC is the ambient temperature. Calibration happens at 23 °C.
	TempC float64
	// TempJitterC is the RMS of the per-measurement random temperature
	// fluctuation around TempC (ambient drift between measurements).
	TempJitterC float64
	// TempSwingC, when positive, makes each measurement sample a uniformly
	// random temperature in [TempC, TempC+TempSwingC] — the paper's oven
	// swing from 23 °C to 75 °C.
	TempSwingC float64
	// VibrationStrain is the peak mechanical strain (relative elongation)
	// induced by vibration/acoustic excitation. The paper's piezo chirp
	// sweeps 1-50 Hz; measurements land at random phase, so each
	// measurement sees a random instantaneous strain.
	VibrationStrain float64
	// EMIAmplitude is the peak interference voltage a nearby digital
	// circuit couples into the receiver, and EMIFreq its fundamental in Hz.
	// The interference is asynchronous to the sampling clock.
	EMIAmplitude float64
	EMIFreq      float64
	// CrosstalkAmplitude is the peak voltage a neighbouring lane of the
	// same bus couples into the receiver. Unlike EMI, the neighbour runs
	// on the *same* clock, so its clock-lane coupling arrives at the same
	// point of every probe cycle — a deterministic bump that synchronized
	// averaging cannot remove. CrosstalkOffsetSec places the bump within
	// the observation window (set by the coupled-region geometry) and
	// CrosstalkWidthSec its width (the aggressor's edge rise time).
	CrosstalkAmplitude float64
	CrosstalkOffsetSec float64
	CrosstalkWidthSec  float64
}

// RoomTemperature returns the calibration environment with a small ambient
// temperature jitter, representing normal lab conditions.
func RoomTemperature() Environment {
	return Environment{TempC: 23, TempJitterC: 0.3}
}

// OvenSwing returns the paper's Fig. 8 environment: temperature swinging from
// 23 °C to 75 °C across measurements.
func OvenSwing() Environment {
	e := RoomTemperature()
	e.TempSwingC = 52
	return e
}

// Vibration returns the paper's piezo-chirp environment layered on room
// temperature.
func Vibration(strain float64) Environment {
	e := RoomTemperature()
	e.VibrationStrain = strain
	return e
}

// EMI returns the paper's nearby-digital-circuit environment layered on room
// temperature.
func EMI(amplitude, freq float64) Environment {
	e := RoomTemperature()
	e.EMIAmplitude = amplitude
	e.EMIFreq = freq
	return e
}

// Crosstalk returns a bundle-neighbour coupling environment layered on room
// temperature: a synchronized aggressor whose clock edge couples at the
// given offset into the victim's window.
func Crosstalk(amplitude, offsetSec float64) Environment {
	e := RoomTemperature()
	e.CrosstalkAmplitude = amplitude
	e.CrosstalkOffsetSec = offsetSec
	e.CrosstalkWidthSec = 120e-12
	return e
}

// Condition is the sampled state of the environment for one IIP measurement.
type Condition struct {
	// DeltaT is the temperature offset from the 23 °C calibration point.
	DeltaT float64
	// Stretch is the mechanical time-axis factor (1 = unstrained).
	Stretch float64
	// EMIAmplitude/EMIFreq/EMIPhase describe the interference seen during
	// this measurement; the phase is random because the aggressor is
	// asynchronous.
	EMIAmplitude float64
	EMIFreq      float64
	EMIPhase     float64
	// Crosstalk parameters (synchronized neighbour-lane coupling).
	CrosstalkAmplitude float64
	CrosstalkOffsetSec float64
	CrosstalkWidthSec  float64
}

// Sample draws the instantaneous condition for one measurement.
func (e Environment) Sample(stream *rng.Stream) Condition {
	temp := e.TempC
	if e.TempSwingC > 0 {
		temp += stream.Uniform(0, e.TempSwingC)
	}
	if e.TempJitterC > 0 {
		temp += stream.Gaussian(0, e.TempJitterC)
	}
	stretch := 1.0
	if e.VibrationStrain > 0 {
		// Random phase of the chirped knocking: instantaneous strain is
		// sinusoidal with uniformly random phase.
		stretch = 1 + e.VibrationStrain*math.Sin(stream.Uniform(0, 2*math.Pi))
	}
	return Condition{
		DeltaT:             temp - 23,
		Stretch:            stretch,
		EMIAmplitude:       e.EMIAmplitude,
		EMIFreq:            e.EMIFreq,
		EMIPhase:           stream.Uniform(0, 2*math.Pi),
		CrosstalkAmplitude: e.CrosstalkAmplitude,
		CrosstalkOffsetSec: e.CrosstalkOffsetSec,
		CrosstalkWidthSec:  e.CrosstalkWidthSec,
	}
}

// CrosstalkAt returns the synchronized neighbour-lane coupling at offset t
// into the probe cycle — identical on every trial, which is exactly why it
// does not average out.
func (c Condition) CrosstalkAt(t float64) float64 {
	if c.CrosstalkAmplitude == 0 {
		return 0
	}
	z := (t - c.CrosstalkOffsetSec) / c.CrosstalkWidthSec
	return c.CrosstalkAmplitude * math.Exp(-0.5*z*z)
}

// EMIAt returns the interference voltage at absolute time t within the
// measurement described by c.
func (c Condition) EMIAt(t float64) float64 {
	if c.EMIAmplitude == 0 {
		return 0
	}
	return c.EMIAmplitude * math.Sin(2*math.Pi*c.EMIFreq*t+c.EMIPhase)
}
