package txline

import (
	"math"
	"testing"

	"divot/internal/rng"
)

func TestRoomTemperatureCondition(t *testing.T) {
	env := RoomTemperature()
	s := rng.New(1)
	for i := 0; i < 100; i++ {
		c := env.Sample(s)
		if math.Abs(c.DeltaT) > 2 {
			t.Fatalf("room-temperature deltaT %v too large", c.DeltaT)
		}
		if c.Stretch != 1 {
			t.Fatalf("unexpected stretch %v without vibration", c.Stretch)
		}
		if c.EMIAmplitude != 0 {
			t.Fatal("unexpected EMI at room conditions")
		}
	}
}

func TestOvenSwingCoversRange(t *testing.T) {
	env := OvenSwing()
	s := rng.New(2)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 2000; i++ {
		c := env.Sample(s)
		temp := 23 + c.DeltaT
		lo = math.Min(lo, temp)
		hi = math.Max(hi, temp)
	}
	if lo > 25 || hi < 70 {
		t.Errorf("oven swing covered [%v, %v], want ~[23, 75]", lo, hi)
	}
}

func TestVibrationStretchDistribution(t *testing.T) {
	env := Vibration(1e-4)
	s := rng.New(3)
	var seen bool
	for i := 0; i < 500; i++ {
		c := env.Sample(s)
		if c.Stretch < 1-1e-4-1e-12 || c.Stretch > 1+1e-4+1e-12 {
			t.Fatalf("stretch %v outside strain envelope", c.Stretch)
		}
		if math.Abs(c.Stretch-1) > 5e-5 {
			seen = true
		}
	}
	if !seen {
		t.Error("vibration never produced appreciable strain")
	}
}

func TestEMICondition(t *testing.T) {
	env := EMI(0.01, 300e6)
	s := rng.New(4)
	c := env.Sample(s)
	if c.EMIAmplitude != 0.01 || c.EMIFreq != 300e6 {
		t.Errorf("EMI parameters not propagated: %+v", c)
	}
	// EMIAt oscillates within the amplitude bound.
	for i := 0; i < 100; i++ {
		v := c.EMIAt(float64(i) * 1e-9)
		if math.Abs(v) > 0.01+1e-15 {
			t.Fatalf("EMI sample %v exceeds amplitude", v)
		}
	}
	if (Condition{}).EMIAt(1) != 0 {
		t.Error("zero condition should have no EMI")
	}
}

func TestEMIPhaseRandomized(t *testing.T) {
	env := EMI(0.01, 300e6)
	s := rng.New(5)
	a := env.Sample(s)
	b := env.Sample(s)
	if a.EMIPhase == b.EMIPhase {
		t.Error("EMI phase should differ across measurements")
	}
}

func TestCrosstalkEnvironment(t *testing.T) {
	env := Crosstalk(1e-3, 1.5e-9)
	c := env.Sample(rng.New(6))
	if c.CrosstalkAmplitude != 1e-3 || c.CrosstalkOffsetSec != 1.5e-9 {
		t.Errorf("crosstalk parameters not propagated: %+v", c)
	}
	// The bump peaks at its offset and is identical across conditions —
	// the synchronized property.
	peak := c.CrosstalkAt(1.5e-9)
	if math.Abs(peak-1e-3) > 1e-12 {
		t.Errorf("bump peak %v", peak)
	}
	if c.CrosstalkAt(0) > 1e-6 {
		t.Error("bump should be localized")
	}
	c2 := env.Sample(rng.New(7))
	if c2.CrosstalkAt(1.5e-9) != peak {
		t.Error("synchronized coupling must not vary across measurements")
	}
	if (Condition{}).CrosstalkAt(1e-9) != 0 {
		t.Error("zero condition should have no crosstalk")
	}
}
