// Package stats provides the statistical substrate used throughout the DIVOT
// simulation: Gaussian distribution math, histograms, descriptive statistics,
// and ROC/EER computation for authentication experiments.
package stats

import (
	"fmt"
	"math"
)

// Gaussian is a normal distribution with the given mean and standard
// deviation. The zero value is not useful; Sigma must be positive.
type Gaussian struct {
	Mean  float64
	Sigma float64
}

// StdNormal is the standard normal distribution N(0, 1).
var StdNormal = Gaussian{Mean: 0, Sigma: 1}

// NewGaussian returns a Gaussian with the given mean and standard deviation.
// It panics if sigma is not positive, since every caller in this codebase
// constructs distributions from static configuration.
func NewGaussian(mean, sigma float64) Gaussian {
	if sigma <= 0 {
		panic(fmt.Sprintf("stats: non-positive sigma %v", sigma))
	}
	return Gaussian{Mean: mean, Sigma: sigma}
}

// PDF returns the probability density at x.
func (g Gaussian) PDF(x float64) float64 {
	z := (x - g.Mean) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (g Gaussian) CDF(x float64) float64 {
	z := (x - g.Mean) / (g.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// Quantile returns the x such that CDF(x) = p. It panics for p outside (0, 1).
func (g Gaussian) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of (0,1)", p))
	}
	return g.Mean + g.Sigma*math.Sqrt2*math.Erfinv(2*p-1)
}

// Variance returns Sigma squared.
func (g Gaussian) Variance() float64 { return g.Sigma * g.Sigma }
