package stats

import (
	"math"
	"testing"
)

// naiveCompositeCDF is the textbook formulation the optimized type must match.
func naiveCompositeCDF(sigma float64, centers []float64, x float64) float64 {
	g := NewGaussian(0, sigma)
	var p float64
	for _, t := range centers {
		p += g.CDF(x - t)
	}
	return p / float64(len(centers))
}

func vernierCenters() []float64 {
	// 25 levels spanning ~6 mV, like the default PDM reference set, in
	// deliberately unsorted order.
	cs := make([]float64, 25)
	for i := range cs {
		cs[i] = 3e-3 - float64((i*7)%25)*0.25e-3
	}
	return cs
}

func TestCompositeCDFMatchesNaive(t *testing.T) {
	const sigma = 0.4e-3
	cs := vernierCenters()
	c := NewCompositeCDF(sigma, cs)
	for x := -8e-3; x <= 8e-3; x += 0.13e-3 {
		got := c.Eval(x)
		want := naiveCompositeCDF(sigma, cs, x)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Eval(%v) = %v, naive %v", x, got, want)
		}
	}
}

func TestCompositeCDFMonotone(t *testing.T) {
	c := NewCompositeCDF(0.4e-3, vernierCenters())
	prev := -1.0
	for x := -10e-3; x <= 10e-3; x += 0.05e-3 {
		p := c.Eval(x)
		if p < prev {
			t.Fatalf("CDF decreased at %v: %v < %v", x, p, prev)
		}
		prev = p
	}
	lo, hi := c.Bracket(6)
	if c.Eval(lo) > 1e-6 || c.Eval(hi) < 1-1e-6 {
		t.Errorf("bracket [%v, %v] not saturated: %v .. %v", lo, hi, c.Eval(lo), c.Eval(hi))
	}
}

func TestCompositeCDFInvertRoundTrips(t *testing.T) {
	c := NewCompositeCDF(0.4e-3, vernierCenters())
	for _, p := range []float64{0.02, 0.1, 0.3, 0.5, 0.7, 0.9, 0.98} {
		x := c.Invert(p)
		if got := c.Eval(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("Eval(Invert(%v)) = %v", p, got)
		}
	}
}

func TestInverseTableTracksExactInverse(t *testing.T) {
	c := NewCompositeCDF(0.4e-3, vernierCenters())
	tab := c.InverseTable(256)
	for _, p := range []float64{0.02, 0.1, 0.25, 0.5, 0.75, 0.9, 0.98} {
		exact := c.Invert(p)
		fast := tab.Invert(p)
		// The interpolation error budget: a few microvolts against a
		// 0.4 mV noise floor.
		if math.Abs(fast-exact) > 5e-6 {
			t.Errorf("table Invert(%v) = %v, exact %v (err %v)", p, fast, exact, fast-exact)
		}
	}
}

func TestInverseTableClampsOutOfRange(t *testing.T) {
	c := NewCompositeCDF(0.4e-3, []float64{0})
	tab := c.InverseTable(64)
	lo, hi := c.Bracket(6)
	if got := tab.Invert(-1); got != lo {
		t.Errorf("Invert(-1) = %v, want bracket lo %v", got, lo)
	}
	if got := tab.Invert(2); got != hi {
		t.Errorf("Invert(2) = %v, want bracket hi %v", got, hi)
	}
}

func TestCompositeCDFPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"sigma":   func() { NewCompositeCDF(0, []float64{0}) },
		"centers": func() { NewCompositeCDF(1, nil) },
		"table":   func() { NewCompositeCDF(1, []float64{0}).InverseTable(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
