package stats

import (
	"fmt"
	"math"
	"sort"
)

// satWindowSigmas is how many sigmas away a mixture component must be before
// its CDF term is treated as exactly 0 or 1. At 8.5σ the true tail mass is
// ~1e-17 — below one ulp of a 25-term sum — so the windowing is lossless at
// float64 precision while skipping most erfc evaluations.
const satWindowSigmas = 8.5

// CompositeCDF is the cumulative distribution of an equal-weight mixture of
// Gaussians N(center_i, sigma) — the composite analog-to-probability transfer
// the PDM comparator front end realizes (Eq. 1 generalized to the Vernier
// reference set of Fig. 4). It precomputes everything that the naive
// per-call formulation rebuilt on every evaluation: the centers are sorted
// once so saturated terms are counted (not integrated), and the 1/(σ√2)
// factor is hoisted.
//
// The value is immutable after construction and safe for concurrent use.
type CompositeCDF struct {
	sigma      float64
	invSigmaS2 float64   // 1/(sigma*sqrt2), hoisted out of the erfc argument
	centers    []float64 // sorted ascending; private copy
}

// NewCompositeCDF builds the mixture CDF. It panics on a non-positive sigma
// or an empty center set, mirroring NewGaussian: every caller constructs
// mixtures from static instrument configuration.
func NewCompositeCDF(sigma float64, centers []float64) *CompositeCDF {
	if sigma <= 0 {
		panic(fmt.Sprintf("stats: non-positive mixture sigma %v", sigma))
	}
	if len(centers) == 0 {
		panic("stats: mixture needs at least one center")
	}
	cs := append([]float64(nil), centers...)
	sort.Float64s(cs)
	return &CompositeCDF{
		sigma:      sigma,
		invSigmaS2: 1 / (sigma * math.Sqrt2),
		centers:    cs,
	}
}

// Sigma returns the component standard deviation.
func (c *CompositeCDF) Sigma() float64 { return c.sigma }

// Fingerprint hashes the mixture's defining parameters (sigma and the sorted
// centers) into a cache key — FNV-1a over the IEEE-754 bit patterns. Two
// mixtures with equal fingerprints almost certainly tabulate identical
// inverse tables; callers that share tables across instruments confirm with
// Equal before trusting a hit.
func (c *CompositeCDF) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(bits>>(8*i)))) * prime64
		}
	}
	mix(c.sigma)
	for _, t := range c.centers {
		mix(t)
	}
	return h
}

// Equal reports whether two mixtures have bitwise-equal parameters — and
// therefore bitwise-equal CDFs, inversions, and tabulations.
func (c *CompositeCDF) Equal(o *CompositeCDF) bool {
	if c.sigma != o.sigma || len(c.centers) != len(o.centers) {
		return false
	}
	for i, t := range c.centers {
		if t != o.centers[i] {
			return false
		}
	}
	return true
}

// Bracket returns the voltage interval [lo, hi] outside which the CDF is
// saturated to (numerically) 0 or 1: the center span widened by pad sigmas.
func (c *CompositeCDF) Bracket(pad float64) (lo, hi float64) {
	return c.centers[0] - pad*c.sigma, c.centers[len(c.centers)-1] + pad*c.sigma
}

// Eval returns the mixture CDF at x. Components further than the saturation
// window contribute their exact limit (0 or 1) without an erfc call; for the
// default iTDR configuration roughly half the Vernier levels saturate at any
// x, halving the transcendental work of each evaluation.
func (c *CompositeCDF) Eval(x float64) float64 {
	w := satWindowSigmas * c.sigma
	// centers[:lo] are all <= x-w: fully transitioned, each contributes 1.
	lo := sort.SearchFloat64s(c.centers, x-w)
	// centers[hi:] are all >= x+w: each contributes 0.
	hi := lo + sort.SearchFloat64s(c.centers[lo:], x+w)
	sum := float64(lo)
	for _, t := range c.centers[lo:hi] {
		sum += 0.5 * math.Erfc((t-x)*c.invSigmaS2)
	}
	return sum / float64(len(c.centers))
}

// Invert returns the x with Eval(x) = p, bisected to sub-noise precision
// over the saturated bracket. p must lie in (0, 1); callers clamp measured
// fractions away from the limits first (see itdr.APC.EstimateVoltage). 36
// halvings of a ~20 mV bracket reach sub-picovolt precision, far below the
// comparator noise.
func (c *CompositeCDF) Invert(p float64) float64 {
	lo, hi := c.Bracket(6)
	for i := 0; i < 36; i++ {
		mid := (lo + hi) / 2
		if c.Eval(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// InverseTable tabulates a monotone CDF on a uniform grid so that inversion
// becomes a binary search plus linear interpolation — no transcendental math
// at all. Built once per reference-level set and reused across measurements,
// this is what lets the iTDR's inverse map stop paying for erfc in steady
// state. Immutable after construction; safe for concurrent use.
type InverseTable struct {
	lo, step float64
	p        []float64 // p[k] = CDF(lo + k*step), nondecreasing
}

// InverseTable samples the mixture CDF at n+1 grid points across the
// saturated bracket. n must be at least 2. For the default iTDR front end
// (σ = 0.4 mV over a ~12 mV bracket), n = 256 keeps the interpolation error
// below a few microvolts — three orders of magnitude under the per-bin
// counting noise.
func (c *CompositeCDF) InverseTable(n int) *InverseTable {
	if n < 2 {
		panic(fmt.Sprintf("stats: inverse table needs >= 2 intervals, got %d", n))
	}
	lo, hi := c.Bracket(6)
	step := (hi - lo) / float64(n)
	p := make([]float64, n+1)
	for k := range p {
		p[k] = c.Eval(lo + float64(k)*step)
	}
	return &InverseTable{lo: lo, step: step, p: p}
}

// Invert returns the x with CDF(x) ~= p, clamped to the tabulated bracket.
func (t *InverseTable) Invert(p float64) float64 {
	k := sort.SearchFloat64s(t.p, p)
	switch {
	case k == 0:
		return t.lo
	case k == len(t.p):
		return t.lo + float64(len(t.p)-1)*t.step
	}
	dp := t.p[k] - t.p[k-1]
	frac := 1.0
	if dp > 0 {
		frac = (p - t.p[k-1]) / dp
	}
	return t.lo + (float64(k-1)+frac)*t.step
}
