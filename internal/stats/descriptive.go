package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest elements of xs.
// It returns (0, 0) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary holds descriptive statistics for a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs in one pass over the
// sorted data.
func Summarize(xs []float64) Summary {
	lo, hi := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    lo,
		Max:    hi,
		Median: Median(xs),
	}
}

// Running accumulates mean and variance incrementally (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the running statistics.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running population variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }
