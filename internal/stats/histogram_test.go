package stats

import (
	"math"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{0.5, 1.5, 1.6, 9.99})
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Errorf("unexpected counts %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("out-of-range samples not clamped: %v", h.Counts)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(-2, 2, 16)
	for i := 0; i < 1000; i++ {
		h.Add(-2 + 4*float64(i)/1000)
	}
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-12 {
		t.Errorf("density integral = %v", integral)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.AddAll([]float64{0.5, 1.5, 2.5, 3.5})
	if got := h.CDFAt(1.5); got != 0.5 {
		t.Errorf("CDFAt(1.5) = %v, want 0.5", got)
	}
	if got := h.CDFAt(3.5); got != 1 {
		t.Errorf("CDFAt(3.5) = %v, want 1", got)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bins":   func() { NewHistogram(0, 1, 0) },
		"empty range": func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
