package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianPDFPeak(t *testing.T) {
	g := NewGaussian(2, 0.5)
	want := 1 / (0.5 * math.Sqrt(2*math.Pi))
	if got := g.PDF(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF at mean = %v, want %v", got, want)
	}
	if g.PDF(1) != g.PDF(3) {
		t.Errorf("PDF not symmetric about mean: %v vs %v", g.PDF(1), g.PDF(3))
	}
}

func TestGaussianCDFKnownValues(t *testing.T) {
	g := StdNormal
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
	}
	for _, c := range cases {
		if got := g.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestGaussianQuantileInvertsCDF(t *testing.T) {
	g := NewGaussian(-1, 2)
	for _, p := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
		x := g.Quantile(p)
		if got := g.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestGaussianCDFMonotone(t *testing.T) {
	g := NewGaussian(0.3, 1.7)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return g.CDF(a) <= g.CDF(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewGaussianPanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for sigma <= 0")
		}
	}()
	NewGaussian(0, 0)
}

func TestGaussianVariance(t *testing.T) {
	if got := NewGaussian(0, 3).Variance(); got != 9 {
		t.Errorf("Variance = %v, want 9", got)
	}
}
