package stats

import (
	"math"
	"testing"
)

func TestROCPerfectSeparation(t *testing.T) {
	genuine := []float64{0.9, 0.95, 0.99}
	impostor := []float64{0.1, 0.2, 0.3}
	roc, err := ComputeROC(genuine, impostor)
	if err != nil {
		t.Fatal(err)
	}
	eer, th := roc.EER()
	if eer != 0 {
		t.Errorf("EER = %v, want 0 for perfectly separated scores", eer)
	}
	if th <= 0.3 || th > 0.9 {
		t.Errorf("EER threshold %v should lie between the classes", th)
	}
	if auc := roc.AUC(); math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %v, want 1", auc)
	}
}

func TestROCIndistinguishable(t *testing.T) {
	same := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	roc, err := ComputeROC(same, same)
	if err != nil {
		t.Fatal(err)
	}
	eer, _ := roc.EER()
	if math.Abs(eer-0.5) > 0.1 {
		t.Errorf("EER = %v, want ~0.5 for identical distributions", eer)
	}
	if auc := roc.AUC(); math.Abs(auc-0.5) > 0.1 {
		t.Errorf("AUC = %v, want ~0.5", auc)
	}
}

func TestROCPartialOverlap(t *testing.T) {
	// 1 of 10 impostors above 1 of 10 genuines: EER should be ~0.1.
	genuine := []float64{0.4, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9}
	impostor := []float64{0.5, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	roc, err := ComputeROC(genuine, impostor)
	if err != nil {
		t.Fatal(err)
	}
	eer, _ := roc.EER()
	if math.Abs(eer-0.1) > 0.05 {
		t.Errorf("EER = %v, want ~0.1", eer)
	}
}

func TestROCEndpoints(t *testing.T) {
	roc, err := ComputeROC([]float64{1, 2}, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	first := roc.Points[0]
	last := roc.Points[len(roc.Points)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("first point = %+v, want origin", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("last point = %+v, want (1,1)", last)
	}
}

func TestROCMonotone(t *testing.T) {
	genuine := []float64{0.3, 0.5, 0.7, 0.9, 0.95}
	impostor := []float64{0.1, 0.4, 0.6, 0.2, 0.05}
	roc, err := ComputeROC(genuine, impostor)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(roc.Points); i++ {
		if roc.Points[i].FPR < roc.Points[i-1].FPR {
			t.Fatalf("FPR not monotone at %d: %v < %v", i, roc.Points[i].FPR, roc.Points[i-1].FPR)
		}
		if roc.Points[i].TPR < roc.Points[i-1].TPR {
			t.Fatalf("TPR not monotone at %d", i)
		}
	}
}

func TestROCEmptyInput(t *testing.T) {
	if _, err := ComputeROC(nil, []float64{1}); err == nil {
		t.Error("expected error for empty genuine sample")
	}
	if _, err := ComputeROC([]float64{1}, nil); err == nil {
		t.Error("expected error for empty impostor sample")
	}
}

func TestFPRAtTPR(t *testing.T) {
	genuine := []float64{0.8, 0.9, 1.0}
	impostor := []float64{0.1, 0.2, 0.85}
	roc, err := ComputeROC(genuine, impostor)
	if err != nil {
		t.Fatal(err)
	}
	// To accept all genuine (TPR=1) threshold must be <= 0.8, letting the
	// 0.85 impostor in: FPR = 1/3.
	if got := roc.FPRAtTPR(1.0); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("FPRAtTPR(1.0) = %v, want 1/3", got)
	}
}
