package stats

import "fmt"

// Histogram accumulates counts over equal-width bins spanning [Lo, Hi).
// Samples outside the range are clamped into the first or last bin so that
// tail mass is never silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: non-positive bin count %d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: empty histogram range [%v, %v)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := h.binOf(x)
	h.Counts[i]++
	h.total++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

func (h *Histogram) binOf(x float64) int {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the center x value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the normalized density of bin i, so that the histogram
// integrates to 1 over its range. Returns 0 when the histogram is empty.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.total) * h.BinWidth())
}

// CDFAt returns the empirical CDF evaluated at the right edge of the bin
// containing x.
func (h *Histogram) CDFAt(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var c int
	end := h.binOf(x)
	for i := 0; i <= end; i++ {
		c += h.Counts[i]
	}
	return float64(c) / float64(h.total)
}
