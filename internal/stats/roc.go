package stats

import (
	"fmt"
	"sort"
)

// ROCPoint is one operating point of a receiver operating characteristic:
// the false-positive and true-positive rates at a given score threshold.
// In the authentication setting a "positive" decision is "accept as genuine",
// so FPR is the rate at which impostor scores exceed the threshold and TPR is
// the rate at which genuine scores do.
type ROCPoint struct {
	Threshold float64
	FPR       float64
	TPR       float64
}

// ROC is a receiver operating characteristic computed from genuine and
// impostor score samples, with higher scores meaning "more genuine".
type ROC struct {
	Points []ROCPoint
}

// ComputeROC builds an ROC curve by sweeping the decision threshold over
// every distinct score in the two samples. Both slices must be non-empty.
func ComputeROC(genuine, impostor []float64) (*ROC, error) {
	if len(genuine) == 0 || len(impostor) == 0 {
		return nil, fmt.Errorf("stats: ROC needs non-empty genuine (%d) and impostor (%d) samples",
			len(genuine), len(impostor))
	}
	g := append([]float64(nil), genuine...)
	im := append([]float64(nil), impostor...)
	sort.Float64s(g)
	sort.Float64s(im)

	// Candidate thresholds: all distinct scores plus sentinels below and
	// above everything, so the curve always spans (0,0) to (1,1).
	all := make([]float64, 0, len(g)+len(im)+2)
	all = append(all, g...)
	all = append(all, im...)
	sort.Float64s(all)
	uniq := all[:0]
	for i, v := range all {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}

	roc := &ROC{Points: make([]ROCPoint, 0, len(uniq)+2)}
	addPoint := func(th float64) {
		// Accept when score >= th.
		tpr := fractionAtOrAbove(g, th)
		fpr := fractionAtOrAbove(im, th)
		roc.Points = append(roc.Points, ROCPoint{Threshold: th, FPR: fpr, TPR: tpr})
	}
	lo, hi := uniq[0], uniq[len(uniq)-1]
	span := hi - lo
	if span == 0 {
		span = 1
	}
	addPoint(hi + span) // accept nothing
	for i := len(uniq) - 1; i >= 0; i-- {
		addPoint(uniq[i])
	}
	addPoint(lo - span) // accept everything
	return roc, nil
}

// fractionAtOrAbove returns the fraction of the sorted sample xs that is >= th.
func fractionAtOrAbove(xs []float64, th float64) float64 {
	i := sort.SearchFloat64s(xs, th)
	return float64(len(xs)-i) / float64(len(xs))
}

// EER returns the equal error rate: the point where the false-positive rate
// equals the false-negative rate (1 - TPR), linearly interpolated between the
// two adjacent operating points, together with the threshold at which it
// occurs.
func (r *ROC) EER() (eer, threshold float64) {
	if len(r.Points) == 0 {
		return 0, 0
	}
	// Points run from strictest (FPR 0) to loosest (FPR 1). FNR = 1 - TPR
	// decreases along the sweep while FPR increases; find the crossing.
	prev := r.Points[0]
	prevDiff := (1 - prev.TPR) - prev.FPR
	for _, p := range r.Points[1:] {
		diff := (1 - p.TPR) - p.FPR
		if diff <= 0 {
			// Crossing between prev and p; interpolate on the diff.
			denom := prevDiff - diff
			t := 1.0
			if denom > 0 {
				t = prevDiff / denom
			}
			fpr := prev.FPR + t*(p.FPR-prev.FPR)
			fnr := (1 - prev.TPR) + t*((1-p.TPR)-(1-prev.TPR))
			th := prev.Threshold + t*(p.Threshold-prev.Threshold)
			return (fpr + fnr) / 2, th
		}
		prev, prevDiff = p, diff
	}
	last := r.Points[len(r.Points)-1]
	return ((1 - last.TPR) + last.FPR) / 2, last.Threshold
}

// AUC returns the area under the ROC curve via the trapezoid rule.
func (r *ROC) AUC() float64 {
	var area float64
	for i := 1; i < len(r.Points); i++ {
		a, b := r.Points[i-1], r.Points[i]
		area += (b.FPR - a.FPR) * (a.TPR + b.TPR) / 2
	}
	return area
}

// FPRAtTPR returns the smallest observed false-positive rate among operating
// points whose true-positive rate is at least minTPR. It returns 1 if no such
// point exists.
func (r *ROC) FPRAtTPR(minTPR float64) float64 {
	best := 1.0
	for _, p := range r.Points {
		if p.TPR >= minTPR && p.FPR < best {
			best = p.FPR
		}
	}
	return best
}
