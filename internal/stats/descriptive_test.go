package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Mean(xs); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := Variance(xs); got != 2 {
		t.Errorf("Variance = %v, want 2", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(2)", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty slice should give zero statistics")
	}
	if Variance([]float64{7}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 || s.Median != 4 {
		t.Errorf("unexpected summary %+v", s)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		var r Running
		for _, x := range clean {
			r.Add(x)
		}
		if r.N() != len(clean) {
			return false
		}
		if len(clean) == 0 {
			return r.Mean() == 0 && r.Variance() == 0
		}
		scale := 1 + math.Abs(Mean(clean))
		return math.Abs(r.Mean()-Mean(clean)) < 1e-6*scale &&
			math.Abs(r.Variance()-Variance(clean)) < 1e-4*(1+Variance(clean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
