package core

import (
	"errors"
	"reflect"
	"testing"

	"divot/internal/attack"
)

// TestMonitorAllMatchesSequential asserts the fleet fan-out contract: one
// MonitorAll round over a mixed fleet (clean links plus a tapped one) yields
// exactly the alerts a sequential MonitorOnce loop would, at every worker
// count. Links own disjoint instruments and streams, so concurrency cannot
// change the physics.
func TestMonitorAllMatchesSequential(t *testing.T) {
	build := func() []*Link {
		links := make([]*Link, 3)
		for i, seed := range []uint64{11, 12, 13} {
			links[i] = calibrated(t, seed)
		}
		// Tap the middle link so the round produces non-empty alerts too.
		attack.DefaultWireTap(0.1).Apply(links[1].Line)
		return links
	}

	seq := build()
	want := make([][]Alert, len(seq))
	for i, l := range seq {
		var err error
		want[i], err = l.MonitorOnce()
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, par := range []int{1, 4, 0} {
		got, err := MonitorAll(build(), par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: MonitorAll alerts differ from sequential MonitorOnce\ngot  %+v\nwant %+v",
				par, got, want)
		}
	}

	if got, err := MonitorAll(nil, 4); err != nil || len(got) != 0 {
		t.Fatalf("MonitorAll(nil) = %+v, %v, want empty", got, err)
	}

	// An uncalibrated link in the fleet reports an error but does not stop
	// the other links' rounds.
	mixed := build()
	mixed = append(mixed, newLink(t, 14))
	got, err := MonitorAll(mixed, 2)
	if !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("uncalibrated fleet member: err = %v, want ErrNotCalibrated", err)
	}
	if !reflect.DeepEqual(got[:3], want) {
		t.Error("calibrated links' rounds changed by a failing fleet member")
	}
}
