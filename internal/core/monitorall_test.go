package core

import (
	"reflect"
	"testing"

	"divot/internal/attack"
)

// TestMonitorAllMatchesSequential asserts the fleet fan-out contract: one
// MonitorAll round over a mixed fleet (clean links plus a tapped one) yields
// exactly the alerts a sequential MonitorOnce loop would, at every worker
// count. Links own disjoint instruments and streams, so concurrency cannot
// change the physics.
func TestMonitorAllMatchesSequential(t *testing.T) {
	build := func() []*Link {
		links := make([]*Link, 3)
		for i, seed := range []uint64{11, 12, 13} {
			links[i] = calibrated(t, seed)
		}
		// Tap the middle link so the round produces non-empty alerts too.
		attack.DefaultWireTap(0.1).Apply(links[1].Line)
		return links
	}

	seq := build()
	want := make([][]Alert, len(seq))
	for i, l := range seq {
		want[i] = l.MonitorOnce()
	}

	for _, par := range []int{1, 4, 0} {
		got := MonitorAll(build(), par)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: MonitorAll alerts differ from sequential MonitorOnce\ngot  %+v\nwant %+v",
				par, got, want)
		}
	}

	if got := MonitorAll(nil, 4); len(got) != 0 {
		t.Fatalf("MonitorAll(nil) = %+v, want empty", got)
	}
}
