package core

import (
	"testing"

	"divot/internal/rng"
	"divot/internal/txline"
)

// monitorAllocBudget is the steady-state allocation ceiling of one healthy
// MonitorOnce round at Parallelism 1. The measurement, scoring, and
// robustness layers all recycle per-endpoint memory (arena, workspace,
// score window), so nothing in the hot path should touch the heap; the
// budget of 2 leaves headroom for runtime-internal noise only. Raising it
// means a regression leaked allocation back into the monitoring loop —
// see ARCHITECTURE.md §8.
const monitorAllocBudget = 2

// TestMonitorOnceAllocationBudget pins the allocation cost of the healthy
// monitoring hot path: after calibration and a warmup round (arena buffers
// sized, inverters promoted, score window filling), a MonitorOnce round
// must stay within monitorAllocBudget allocations.
func TestMonitorOnceAllocationBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	l, err := NewLink("alloc0", cfg, txline.DefaultConfig(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm arenas, workspaces, and the score window
		if _, err := l.MonitorOnce(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		alerts, err := l.MonitorOnce()
		if err != nil {
			t.Fatal(err)
		}
		if len(alerts) != 0 {
			t.Fatalf("clean link raised %d alerts", len(alerts))
		}
	})
	if allocs > monitorAllocBudget {
		t.Fatalf("MonitorOnce allocates %v times per round, budget %d", allocs, monitorAllocBudget)
	}
}
