package core

import (
	"testing"

	"divot/internal/rng"
	"divot/internal/txline"
)

// monitorAllocBudget is the steady-state allocation ceiling of one healthy
// MonitorOnce round at Parallelism 1. The measurement, scoring, and
// robustness layers all recycle per-endpoint memory (arena, workspace,
// score window), so nothing in the hot path should touch the heap; the
// budget of 2 leaves headroom for runtime-internal noise only. Raising it
// means a regression leaked allocation back into the monitoring loop —
// see ARCHITECTURE.md §8.
const monitorAllocBudget = 2

// TestMonitorOnceAllocationBudget pins the allocation cost of the healthy
// monitoring hot path: after calibration and a warmup round (arena buffers
// sized, inverters promoted, score window filling), a MonitorOnce round
// must stay within monitorAllocBudget allocations.
func TestMonitorOnceAllocationBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	l, err := NewLink("alloc0", cfg, txline.DefaultConfig(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm arenas, workspaces, and the score window
		if _, err := l.MonitorOnce(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		alerts, err := l.MonitorOnce()
		if err != nil {
			t.Fatal(err)
		}
		if len(alerts) != 0 {
			t.Fatalf("clean link raised %d alerts", len(alerts))
		}
	})
	if allocs > monitorAllocBudget {
		t.Fatalf("MonitorOnce allocates %v times per round, budget %d", allocs, monitorAllocBudget)
	}
}

// calibCaptureAllocBudget is the allocation ceiling per enrollment capture
// of a warm re-calibration at Parallelism 1: the ISSUE-10 target of ≤4
// allocs per IIPMeasurement-equivalent capture on the arena/series path
// (the legacy slice-of-waveforms path paid ~180). The fixed per-Calibrate
// overhead (fingerprint fold, enrollment store, threshold bookkeeping)
// amortizes across the captures and must fit inside the same envelope.
const calibCaptureAllocBudget = 4

// TestCalibrateAllocationBudget pins the allocation cost of cold
// enrollment: after one cold Calibrate (arena buffers sized, shared
// composite-CDF warm-up built, tamper floor derived), re-calibrating the
// link must stay within calibCaptureAllocBudget allocations per capture
// across both endpoints.
func TestCalibrateAllocationBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	l, err := NewLink("calib-alloc0", cfg, txline.DefaultConfig(), rng.New(98))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	captures := 2 * cfg.EnrollMeasurements // both endpoints enroll
	budget := float64(captures * calibCaptureAllocBudget)
	allocs := testing.AllocsPerRun(5, func() {
		if err := l.Calibrate(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("Calibrate allocates %v times (%d captures), budget %v",
			allocs, captures, budget)
	}
}
