package core

// Durable link snapshots. Calibration is the expensive step of the protocol —
// EnrollMeasurements averaged acquisitions plus tamper-floor probes per
// endpoint — and its product (the enrolled CDF fingerprint, the derived
// tamper threshold, the dead-bin mask, the drift baseline) is exactly the
// state a daemon must not lose across a restart. LinkSnapshot is that state
// in a flat, versioned, JSON-encodable form; Link.Snapshot captures it and
// Link.Restore installs it on a freshly manufactured link, validating
// everything before mutating anything — a rejected snapshot leaves the link
// untouched and uncalibrated, so the caller's fallback is always plain cold
// Calibrate.
//
// Restore trusts its input only as far as internal consistency: the caller
// (internal/store's backend) is responsible for integrity (checksums) and
// provenance (spec-hash validation). The determinism contract makes the
// restore sound: the same seed and spec re-manufacture bit-identical lines
// and instruments, so a fingerprint enrolled before the restart still matches
// the line the restored link measures.

import (
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/signal"
	"divot/internal/telemetry"
)

// LinkSnapshotVersion guards against decoding incompatible snapshots.
const LinkSnapshotVersion = 1

// EndpointSnapshot is one endpoint's durable state: the enrolled fingerprint
// (post-pipeline Raw view, like the EPROM image codec), the derived tamper
// threshold, and the robustness bookkeeping that reproduces the endpoint's
// health verdict.
type EndpointSnapshot struct {
	// Rate and Samples are the enrolled fingerprint's Raw waveform.
	Rate    float64   `json:"rate"`
	Samples []float64 `json:"samples"`
	// PeakThreshold is the tamper detector's (possibly auto-calibrated)
	// threshold in volts²; AutoThreshold records whether re-enrollment may
	// re-derive it.
	PeakThreshold float64 `json:"peak_threshold"`
	AutoThreshold bool    `json:"auto_threshold,omitempty"`
	// MaskedBins are the indices of persistently masked dead ETS bins.
	MaskedBins []int `json:"masked_bins,omitempty"`
	// Window is the rolling accepted-score drift baseline, oldest first.
	Window []float64 `json:"window,omitempty"`
	// Counters reproducing EndpointHealth across the restart.
	LastScore     float64 `json:"last_score,omitempty"`
	Reenrollments int     `json:"reenrollments,omitempty"`
	SuspectRounds int     `json:"suspect_rounds,omitempty"`
	LastSuspect   bool    `json:"last_suspect,omitempty"`
	Failures      int     `json:"failures,omitempty"`
	SinceReenroll int     `json:"since_reenroll,omitempty"`
	// Authenticated is the endpoint's latest monitoring verdict; the gate is
	// restored to match.
	Authenticated bool `json:"authenticated"`
}

// LinkSnapshot is one link's durable state.
type LinkSnapshot struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	// Rounds is the link's monitoring round counter (events after a restore
	// continue the round numbering instead of restarting at 1).
	Rounds uint64 `json:"rounds"`
	// Generation counts re-enrollments across both endpoints — a quick
	// staleness signal for operators ("this enrollment is the Nth").
	Generation int              `json:"generation"`
	CPU        EndpointSnapshot `json:"cpu"`
	Module     EndpointSnapshot `json:"module"`
}

// Snapshot captures the link's durable state. It fails before calibration —
// there is nothing worth persisting yet.
func (l *Link) Snapshot() (LinkSnapshot, error) {
	if !l.calibrated {
		return LinkSnapshot{}, fmt.Errorf("link %q: %w", l.ID, ErrNotCalibrated)
	}
	cpu, err := l.CPU.snapshot()
	if err != nil {
		return LinkSnapshot{}, fmt.Errorf("link %q: %w", l.ID, err)
	}
	mod, err := l.Module.snapshot()
	if err != nil {
		return LinkSnapshot{}, fmt.Errorf("link %q: %w", l.ID, err)
	}
	return LinkSnapshot{
		Version:    LinkSnapshotVersion,
		ID:         l.ID,
		Rounds:     l.rounds,
		Generation: cpu.Reenrollments + mod.Reenrollments,
		CPU:        cpu,
		Module:     mod,
	}, nil
}

// snapshot captures one endpoint's durable state.
func (e *Endpoint) snapshot() (EndpointSnapshot, error) {
	f, ok := e.store.Lookup(enrollKey)
	if !ok {
		return EndpointSnapshot{}, fmt.Errorf("%s endpoint: %w", e.Side, ErrEnrollmentLost)
	}
	s := EndpointSnapshot{
		Rate:          f.Raw.Rate,
		Samples:       append([]float64(nil), f.Raw.Samples...),
		PeakThreshold: e.detector.PeakThreshold,
		AutoThreshold: e.autoThreshold,
		Window:        append([]float64(nil), e.window...),
		LastScore:     e.lastScore,
		Reenrollments: e.reenrollments,
		SuspectRounds: e.suspectRounds,
		LastSuspect:   e.lastSuspect,
		Failures:      e.failures,
		SinceReenroll: e.sinceReenroll,
		Authenticated: e.authenticated,
	}
	for i, dead := range e.mask {
		if dead {
			s.MaskedBins = append(s.MaskedBins, i)
		}
	}
	return s, nil
}

// validate rejects snapshots that cannot have come from a compatible link.
func (s EndpointSnapshot) validate(side Side, bins int) error {
	if s.Rate <= 0 || len(s.Samples) == 0 {
		return fmt.Errorf("%s endpoint: corrupt fingerprint (rate %v, %d samples)", side, s.Rate, len(s.Samples))
	}
	if len(s.Samples) != bins {
		return fmt.Errorf("%s endpoint: fingerprint has %d bins, instrument has %d", side, len(s.Samples), bins)
	}
	if s.PeakThreshold <= 0 {
		return fmt.Errorf("%s endpoint: non-positive tamper threshold %v", side, s.PeakThreshold)
	}
	for _, i := range s.MaskedBins {
		if i < 0 || i >= bins {
			return fmt.Errorf("%s endpoint: masked bin %d out of range [0,%d)", side, i, bins)
		}
	}
	if s.Reenrollments < 0 || s.SuspectRounds < 0 || s.Failures < 0 || s.SinceReenroll < 0 {
		return fmt.Errorf("%s endpoint: negative counter", side)
	}
	if len(s.Window) > 4096 {
		return fmt.Errorf("%s endpoint: drift window of %d entries is not plausible", side, len(s.Window))
	}
	return nil
}

// Restore installs a snapshot on an uncalibrated (or recalibrating) link:
// enrollments, tamper thresholds, dead-bin masks, drift baselines, health
// counters, gates. Every field is validated before any state moves — on error
// the link is exactly as it was, so the caller can fall back to Calibrate.
// On success the link is calibrated, its round counter continues from the
// snapshot, and one EventRestored is emitted.
func (l *Link) Restore(s LinkSnapshot) error {
	if s.Version != LinkSnapshotVersion {
		return fmt.Errorf("link %q: snapshot version %d, want %d", l.ID, s.Version, LinkSnapshotVersion)
	}
	if s.ID != l.ID {
		return fmt.Errorf("link %q: snapshot belongs to link %q", l.ID, s.ID)
	}
	if err := s.CPU.validate(SideCPU, l.CPU.bins); err != nil {
		return fmt.Errorf("link %q: %w", l.ID, err)
	}
	if err := s.Module.validate(SideModule, l.Module.bins); err != nil {
		return fmt.Errorf("link %q: %w", l.ID, err)
	}
	if err := l.CPU.restore(s.CPU, l.cfg); err != nil {
		return fmt.Errorf("link %q: %w", l.ID, err)
	}
	if err := l.Module.restore(s.Module, l.cfg); err != nil {
		return fmt.Errorf("link %q: %w", l.ID, err)
	}
	l.calibrated = true
	l.rounds = s.Rounds
	l.emit(telemetry.Event{
		Kind: telemetry.EventRestored, Link: l.ID, Round: l.rounds,
		Detail: fmt.Sprintf("generation %d", s.Generation),
	})
	return nil
}

// restore installs one endpoint's snapshot; validation has already passed.
func (e *Endpoint) restore(s EndpointSnapshot, cfg Config) error {
	// Rebuild the fingerprint exactly like the EPROM image codec: the stored
	// samples are the post-smoothing Raw view, so the comparison view is
	// derived without smoothing again.
	noSmooth := e.pipeline
	noSmooth.SmoothSigmaBins = 0
	f := noSmooth.FromWaveform(signal.FromSamples(s.Rate, append([]float64(nil), s.Samples...)))
	if err := e.store.Enroll(enrollKey, f); err != nil {
		return fmt.Errorf("%s endpoint: %w", e.Side, err)
	}
	e.detector.PeakThreshold = s.PeakThreshold
	e.autoThreshold = s.AutoThreshold
	e.bins = cfg.ITDR.Bins()
	e.satStreak = make([]int, e.bins)
	e.mask = nil
	if len(s.MaskedBins) > 0 {
		e.mask = fingerprint.NewBinMask(e.bins)
		for _, i := range s.MaskedBins {
			e.mask[i] = true
		}
	}
	e.window = append(e.window[:0], s.Window...)
	e.lastScore = s.LastScore
	e.reenrollments = s.Reenrollments
	e.suspectRounds = s.SuspectRounds
	e.lastSuspect = s.LastSuspect
	e.failures = s.Failures
	e.sinceReenroll = s.SinceReenroll
	e.authenticated = s.Authenticated
	e.Gate.Set(s.Authenticated)
	// Publish no spurious health transition on the first post-restore round:
	// the restored state's health is the state the link shut down in.
	e.lastHealth = e.health(cfg.Robust).State
	return nil
}
