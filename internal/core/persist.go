package core

import (
	"fmt"
	"io"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
)

// ExportEnrollment writes the endpoint's stored bus fingerprint — its EPROM
// image — to w. It fails before calibration.
func (e *Endpoint) ExportEnrollment(w io.Writer) error {
	f, ok := e.store.Lookup(enrollKey)
	if !ok {
		return fmt.Errorf("core: %s endpoint has no enrollment to export", e.Side)
	}
	return f.Encode(w)
}

// ImportEnrollment installs a previously exported fingerprint, opening the
// endpoint's gate — the power-on path of a system whose calibration happened
// at manufacturing time (§III) and was retained in EPROM.
func (e *Endpoint) ImportEnrollment(r io.Reader) error {
	f, err := fingerprint.DecodeIIP(r, e.pipeline)
	if err != nil {
		return fmt.Errorf("core: %s endpoint import: %w", e.Side, err)
	}
	if err := e.store.Enroll(enrollKey, f); err != nil {
		return fmt.Errorf("core: %s endpoint import: %w", e.Side, err)
	}
	return nil
}

// RestoreCalibration installs previously exported enrollments on both
// endpoints and re-derives the tamper thresholds from the current clean
// state, leaving the link ready to monitor — the boot path of an
// already-paired system.
func (l *Link) RestoreCalibration(cpu, module io.Reader) error {
	for _, pair := range []struct {
		e *Endpoint
		r io.Reader
	}{{l.CPU, cpu}, {l.Module, module}} {
		if err := pair.e.ImportEnrollment(pair.r); err != nil {
			return err
		}
		enrolled, _ := pair.e.store.Lookup(enrollKey)
		if pair.e.detector.PeakThreshold == 0 {
			// Floor probes run on the arena/workspace path like Calibrate's;
			// note the restore threshold is 3× the raw floor (no tamperScale),
			// the historical boot-path contract.
			e := pair.e
			var floor float64
			e.refl.MeasureSeries(e.arena, e.observed, l.Env, 4, 1,
				func(_ int, meas itdr.Measurement) {
					m := e.pipeline.FromWaveformWith(&e.ws, meas.IIP)
					e.errBuf = fingerprint.ErrorFunctionInto(e.errBuf, m, enrolled)
					if v, _, _ := fingerprint.PeakError(e.errBuf); v > floor {
						floor = v
					}
				})
			e.detector.PeakThreshold = 3 * floor
		}
		pair.e.authenticated = true
		pair.e.Gate.Set(true)
	}
	l.calibrated = true
	return nil
}
