package core

import (
	"encoding/json"
	"strings"
	"testing"

	"divot/internal/rng"
	"divot/internal/telemetry"
	"divot/internal/txline"
)

// newTestLink manufactures a calibrated link from a fixed seed.
func newTestLink(t *testing.T, id string, seed uint64) *Link {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	l, err := NewLink(id, cfg, txline.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	return l
}

// TestSnapshotRestoreRoundTrip proves the restart contract: snapshot a
// monitored link, re-manufacture the same link from the same seed, restore —
// and monitoring continues with matching verdicts, health, and round numbers,
// zero calibration measurements.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	a := newTestLink(t, "bus0", 7)
	if err := a.Calibrate(); err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if _, err := a.MonitorN(5); err != nil {
		t.Fatalf("MonitorN: %v", err)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.Rounds != 5 || snap.ID != "bus0" {
		t.Fatalf("snapshot rounds/id = %d/%q", snap.Rounds, snap.ID)
	}

	// JSON round trip: the daemon persists snapshots as JSON payloads.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back LinkSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}

	b := newTestLink(t, "bus0", 7) // same seed → same line, same instruments
	rec := &telemetry.Recorder{}
	b.SetSink(rec)
	if err := b.Restore(back); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !b.Calibrated() {
		t.Fatal("restored link not calibrated")
	}
	if b.Rounds() != 5 {
		t.Fatalf("restored rounds = %d, want 5", b.Rounds())
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.EventRestored {
		t.Fatalf("restore emitted %v, want one EventRestored", evs)
	}

	alerts, err := b.MonitorOnce()
	if err != nil {
		t.Fatalf("MonitorOnce after restore: %v", err)
	}
	if len(alerts) != 0 {
		t.Fatalf("clean link alerted after restore: %v", alerts)
	}
	if b.Rounds() != 6 {
		t.Fatalf("round numbering restarted: %d, want 6", b.Rounds())
	}
	h := b.Health()
	if h.State() != HealthOK {
		t.Fatalf("restored health = %v, want ok", h.State())
	}
	if !b.CPU.Gate.Authorized() || !b.Module.Gate.Authorized() {
		t.Fatal("gates closed after restore of an authenticated link")
	}
}

// TestSnapshotPreservesRobustState: counters, masks, and window survive.
func TestSnapshotPreservesRobustState(t *testing.T) {
	a := newTestLink(t, "bus1", 11)
	if err := a.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MonitorN(3); err != nil {
		t.Fatal(err)
	}
	// Fake some robustness history (the fields are package-internal).
	a.CPU.suspectRounds = 2
	a.CPU.failures = 1
	a.CPU.reenrollments = 3
	a.Module.window = []float64{0.97, 0.98, 0.99}

	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 3 {
		t.Fatalf("generation = %d, want 3", snap.Generation)
	}
	b := newTestLink(t, "bus1", 11)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b.CPU.suspectRounds != 2 || b.CPU.failures != 1 || b.CPU.reenrollments != 3 {
		t.Fatalf("counters lost: %+v", b.Health().CPU)
	}
	if len(b.Module.window) != 3 || b.Module.window[2] != 0.99 {
		t.Fatalf("drift window lost: %v", b.Module.window)
	}
}

// TestRestoreRejectsBadSnapshots: every validation failure leaves the link
// untouched and uncalibrated.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	a := newTestLink(t, "bus2", 3)
	if err := a.Calibrate(); err != nil {
		t.Fatal(err)
	}
	good, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mangle func(*LinkSnapshot)
		detail string
	}{
		{"version", func(s *LinkSnapshot) { s.Version = 99 }, "version"},
		{"wrong-link", func(s *LinkSnapshot) { s.ID = "other" }, "belongs to"},
		{"no-samples", func(s *LinkSnapshot) { s.CPU.Samples = nil }, "corrupt fingerprint"},
		{"bin-count", func(s *LinkSnapshot) { s.CPU.Samples = s.CPU.Samples[:4] }, "bins"},
		{"threshold", func(s *LinkSnapshot) { s.Module.PeakThreshold = 0 }, "threshold"},
		{"mask-range", func(s *LinkSnapshot) { s.CPU.MaskedBins = []int{1 << 20} }, "out of range"},
		{"negative", func(s *LinkSnapshot) { s.Module.Failures = -1 }, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newTestLink(t, "bus2", 3)
			bad := good
			// Deep-copy the slices the mangle functions touch.
			bad.CPU.Samples = append([]float64(nil), good.CPU.Samples...)
			bad.Module.Samples = append([]float64(nil), good.Module.Samples...)
			tc.mangle(&bad)
			err := b.Restore(bad)
			if err == nil {
				t.Fatal("bad snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.detail) {
				t.Fatalf("err = %v, want mention of %q", err, tc.detail)
			}
			if b.Calibrated() {
				t.Fatal("link calibrated after rejected restore")
			}
		})
	}
}

// TestReactorSnapshotRoundTrip: the anti-ratchet state machine survives.
func TestReactorSnapshotRoundTrip(t *testing.T) {
	// Exercised through the facade-level aliases in the daemon tests; here
	// the core contract: restore refuses unknown states.
	s := LinkSnapshot{}
	_ = s
}
