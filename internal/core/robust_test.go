package core

import (
	"testing"

	"divot/internal/attack"
	"divot/internal/fault"
	"divot/internal/rng"
	"divot/internal/txline"
)

// faultedLink calibrates a fresh link and attaches fault planes (seeded off
// the same stream universe) to the chosen endpoints' instruments.
func faultedLink(t *testing.T, seed uint64, cfg Config, cpuFaults, modFaults []fault.Fault) *Link {
	t.Helper()
	st := rng.New(seed)
	l, err := NewLink("bus0", cfg, txline.DefaultConfig(), st.Child("link"))
	if err != nil {
		t.Fatal(err)
	}
	if cpuFaults != nil {
		l.CPU.Instrument().SetInjector(fault.NewPlane(st.Child("fault-cpu"), cpuFaults...))
	}
	if modFaults != nil {
		l.Module.Instrument().SetInjector(fault.NewPlane(st.Child("fault-module"), modFaults...))
	}
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	return l
}

// TestConfirmAbsorbsTransientFault is the confirm-on-suspect property: a
// one-shot instrument fault severe enough to fail a round must be absorbed
// (suspect, no alert, gates open) under confirmation, while the unhardened
// protocol alarms on it.
func TestConfirmAbsorbsTransientFault(t *testing.T) {
	cfg := DefaultConfig()
	glitch := uint64(cfg.CalibrationMeasurements() + 1) // first monitoring measurement
	faults := []fault.Fault{fault.StuckComparator(true, fault.Once(glitch))}

	hardened := faultedLink(t, 100, cfg, faults, nil)
	alerts := mustMonitor(t, hardened)
	if len(alerts) != 0 {
		t.Errorf("confirmed protocol alarmed on a one-shot fault: %v", alerts)
	}
	h := hardened.Health()
	if !h.SuspectRound() || h.CPU.SuspectRounds != 1 {
		t.Errorf("absorbed transient not reported as suspect: %+v", h.CPU)
	}
	if h.State() != HealthSuspect {
		t.Errorf("link state = %v, want suspect", h.State())
	}
	if !hardened.CPU.Gate.Authorized() {
		t.Error("gate must stay open through an absorbed transient")
	}
	// The next clean round clears the suspect flag.
	mustMonitor(t, hardened)
	if h := hardened.Health(); h.State() != HealthOK || h.SuspectRound() {
		t.Errorf("suspect flag sticky after a clean round: %v", h)
	}

	// Without confirmation the same fault closes the gate.
	bare := cfg
	bare.Robust.ConfirmRetries = 0
	naive := faultedLink(t, 100, bare, faults, nil)
	alerts = mustMonitor(t, naive)
	if len(alerts) == 0 {
		t.Fatal("unconfirmed protocol absorbed the fault — test probes nothing")
	}
	if naive.CPU.Gate.Authorized() {
		t.Error("unconfirmed protocol should have closed the gate")
	}
}

// TestConfirmStillCatchesPersistentAttack: confirmation must not absorb a
// failure that reproduces — a cold-boot swap onto a foreign bus alarms
// through the retries.
func TestConfirmStillCatchesPersistentAttack(t *testing.T) {
	l := calibrated(t, 101)
	foreign := txline.New("foreign", txline.DefaultConfig(), rng.New(102))
	l.Module.SetObservedLine(foreign)
	alerts := mustMonitor(t, l)
	var modFail bool
	for _, a := range alerts {
		if a.Side == SideModule && a.Kind == AlertAuthFailure {
			modFail = true
		}
	}
	if !modFail {
		t.Fatalf("foreign bus absorbed by confirmation: %v", alerts)
	}
	if l.Module.Gate.Authorized() {
		t.Error("gate open after confirmed rejection")
	}
	if h := l.Health(); h.Module.State != HealthFailed {
		t.Errorf("module endpoint health = %v, want failed", h.Module.State)
	}
}

// TestDeadBinsDegradeGracefully is the graceful-degradation property: a
// permanently dead 10% of ETS bins is masked after DeadBinStreak sightings,
// genuine authentication continues at reduced resolution with degraded
// health, and a module swap is still rejected through the mask.
func TestDeadBinsDegradeGracefully(t *testing.T) {
	cfg := DefaultConfig()
	onset := uint64(cfg.CalibrationMeasurements() + 1)
	faults := []fault.Fault{fault.DeadBinField(0.10, fault.From(onset))}
	l := faultedLink(t, 103, cfg, faults, nil)

	alerts := mustMonitorN(t, l, 6)
	if len(alerts) != 0 {
		t.Errorf("genuine link with 10%% dead bins alarmed: %v", alerts)
	}
	h := l.Health()
	if !h.Degraded() || h.CPU.State != HealthDegraded {
		t.Errorf("dead bins not reported as degradation: %+v", h.CPU)
	}
	if h.CPU.MaskedBins == 0 || h.CPU.MaskedFraction < 0.05 || h.CPU.MaskedFraction > 0.15 {
		t.Errorf("masked fraction %.3f, want ~0.10", h.CPU.MaskedFraction)
	}
	if h.Module.State != HealthOK {
		t.Errorf("healthy module endpoint reports %v", h.Module.State)
	}
	if !l.CPU.Gate.Authorized() {
		t.Error("gate closed on a degraded but genuine link")
	}

	// The degraded instrument must still tell friend from foe: reroute the
	// faulted CPU endpoint onto a foreign bus.
	foreign := txline.New("foreign", txline.DefaultConfig(), rng.New(104))
	l.CPU.SetObservedLine(foreign)
	alerts = mustMonitor(t, l)
	var rejected bool
	for _, a := range alerts {
		if a.Side == SideCPU && a.Kind == AlertAuthFailure {
			rejected = true
			if a.Score > 0.6 {
				t.Errorf("foreign bus scored %.3f through the mask; margin collapsed", a.Score)
			}
		}
	}
	if !rejected {
		t.Fatalf("degraded endpoint accepted a foreign bus: %v", alerts)
	}
}

// TestMassBinLossFailsHealth: past MaxMaskedFraction the endpoint must stop
// claiming "degraded" and report failure.
func TestMassBinLossFailsHealth(t *testing.T) {
	cfg := DefaultConfig()
	onset := uint64(cfg.CalibrationMeasurements() + 1)
	l := faultedLink(t, 105, cfg, []fault.Fault{fault.DeadBinField(0.35, fault.From(onset))}, nil)
	if _, err := l.MonitorN(6); err != nil {
		t.Fatal(err)
	}
	if h := l.Health(); h.CPU.State != HealthFailed {
		t.Errorf("35%% dead bins report %v, want failed (fraction %.2f)", h.CPU.State, h.CPU.MaskedFraction)
	}
}

// driftFaults is the slow-aging scenario: the ETS timebase (PLL) drifting at
// 0.3 ps per measurement plus mild reference-noise growth. The waveform
// slides slowly and globally — exactly what guarded re-enrollment exists to
// absorb. (Comparator *offset* drift is deliberately not used here: the
// derivative comparison cancels a uniform offset until clipping, which makes
// it a cliff, not a slope.)
func driftFaults(onset uint64) []fault.Fault {
	return []fault.Fault{
		fault.PhaseDrift(0.3e-12, fault.From(onset)),
		fault.NoiseDrift(0, 0.002, fault.From(onset)),
	}
}

// TestDriftGuardedReenrollment: slow global drift decays the score until the
// guarded refresh triggers; with refresh the link rides through alert-free,
// without it the same drift eventually closes the gate.
func TestDriftGuardedReenrollment(t *testing.T) {
	cfg := DefaultConfig()
	onset := uint64(cfg.CalibrationMeasurements() + 1)
	const rounds = 60

	l := faultedLink(t, 106, cfg, driftFaults(onset), nil)
	alerts := mustMonitorN(t, l, rounds)
	if len(alerts) != 0 {
		t.Errorf("drifting link alarmed despite re-enrollment: %v", alerts)
	}
	h := l.Health()
	if h.CPU.Reenrollments == 0 {
		t.Error("no re-enrollment over 60 drifting rounds")
	}
	if !l.CPU.Gate.Authorized() {
		t.Error("gate closed on re-enrolled link")
	}

	noRefresh := cfg
	noRefresh.Robust.Reenroll.Enabled = false
	bare := faultedLink(t, 106, noRefresh, driftFaults(onset), nil)
	alerts, err := bare.MonitorN(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("drift never failed the unrefreshed link — test probes nothing")
	}
}

// TestReenrollmentRefusesAttack: the drift guards must refuse to launder an
// interposer into the enrollment even when it arrives on top of the same
// slow drift the refresh path tolerates.
func TestReenrollmentRefusesAttack(t *testing.T) {
	cfg := DefaultConfig()
	onset := uint64(cfg.CalibrationMeasurements() + 1)
	l := faultedLink(t, 106, cfg, driftFaults(onset), nil)

	mustMonitorN(t, l, 30)
	refreshesBefore := l.Health().CPU.Reenrollments

	attack.DefaultInterposer(0.125).Apply(l.Line)
	alerts, err := l.MonitorN(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("interposer under drift never detected")
	}
	if got := l.Health().CPU.Reenrollments; got != refreshesBefore {
		t.Errorf("enrollment refreshed %d times after the attack landed", got-refreshesBefore)
	}
	if l.CPU.Gate.Authorized() {
		t.Error("gate open with interposer installed")
	}
}

// TestFaultedMonitoringDeterministic: the full hardened round — faults,
// confirmation retries, masking, re-enrollment — is bit-identical at any
// Parallelism.
func TestFaultedMonitoringDeterministic(t *testing.T) {
	run := func(par int) ([]Alert, LinkHealth) {
		cfg := DefaultConfig()
		cfg.Parallelism = par
		onset := uint64(cfg.CalibrationMeasurements() + 1)
		faults := []fault.Fault{
			fault.DeadBinField(0.05, fault.From(onset)),
			fault.StuckComparator(true, fault.Once(onset+4)),
			fault.OffsetStep(0, 0.15e-3, fault.From(onset)),
		}
		l := faultedLink(t, 107, cfg, faults, faults[1:2])
		alerts := mustMonitorN(t, l, 40)
		return alerts, l.Health()
	}
	a1, h1 := run(1)
	a4, h4 := run(4)
	if len(a1) != len(a4) {
		t.Fatalf("alert counts differ across parallelism: %d vs %d", len(a1), len(a4))
	}
	for i := range a1 {
		if a1[i] != a4[i] {
			t.Fatalf("alert %d differs: %+v vs %+v", i, a1[i], a4[i])
		}
	}
	h1.ID, h4.ID = "", ""
	if h1 != h4 {
		t.Fatalf("health differs across parallelism:\n%+v\n%+v", h1, h4)
	}
}
