// Package core implements the DIVOT architecture's operating protocol
// (§III): two iTDR-equipped endpoints — the CPU's memory controller and the
// memory module's interface — observing the same bus, with calibration
// (fingerprint enrollment), runtime monitoring (two-way authentication plus
// tamper detection), and reaction (authentication gates and alerts).
package core

import (
	"context"
	"errors"
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/memctl"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/telemetry"
	"divot/internal/txline"
)

// ErrNotCalibrated is returned (wrapped, with the link id) when monitoring is
// attempted before Calibrate has enrolled the link.
var ErrNotCalibrated = errors.New("core: link not calibrated")

// ErrEnrollmentLost is returned when an endpoint's enrollment store no longer
// holds the link fingerprint — corrupted or erased EPROM.
var ErrEnrollmentLost = errors.New("core: enrollment lost")

// Side identifies which end of the link an endpoint sits on.
type Side int

const (
	// SideCPU is the processor/memory-controller end.
	SideCPU Side = iota
	// SideModule is the memory-module end.
	SideModule
)

// String names the side.
func (s Side) String() string {
	switch s {
	case SideCPU:
		return "cpu"
	case SideModule:
		return "module"
	}
	return fmt.Sprintf("Side(%d)", int(s))
}

// Endpoint is one iTDR-equipped bus interface with its enrollment store and
// the authentication gate it drives.
type Endpoint struct {
	Side Side
	// Gate is the memctl authentication gate this endpoint controls: the
	// CPU endpoint gates command issue; the module endpoint gates column
	// access.
	Gate *memctl.StaticGate

	refl     *itdr.Reflectometer
	pipeline fingerprint.Pipeline
	store    *fingerprint.Store
	matcher  fingerprint.Matcher
	detector fingerprint.TamperDetector

	// observed is the line this endpoint physically measures. A cold-boot
	// swap changes the module endpoint's observed line; the CPU endpoint's
	// observed line changes if the bus itself is rewired.
	observed *txline.Line

	// arena and ws are the endpoint's reusable measurement and scoring
	// memory: every monitoring round recycles them, so the steady-state
	// hot path allocates nothing (see ARCHITECTURE.md §8). Enrollment
	// streams captures through them too (avg accumulates arena-backed
	// waveforms, errBuf holds the floor-probe error field); only the
	// *retained* results — the enrolled fingerprint — own their memory.
	arena  *itdr.Arena
	ws     fingerprint.Workspace
	avg    fingerprint.Averager
	errBuf *signal.Waveform

	// Authenticated reflects the most recent monitoring verdict.
	authenticated bool

	// Robustness state (see robust.go). bins is the instrument's ETS bin
	// count; satStreak counts consecutive saturated sightings per bin; mask
	// is the persistent dead-bin mask matching renormalizes around.
	bins          int
	satStreak     []int
	mask          fingerprint.BinMask
	window        []float64 // rolling accepted-score window, oldest first
	lastScore     float64
	lastPeakErr   float64 // E_xy peak of the latest monitored round
	lastContrast  float64 // peak-to-mean contrast of that error field
	reenrollments int
	suspectRounds int
	lastSuspect   bool
	failures      int // confirmed auth-failure rounds
	sinceReenroll int // clean rounds since enrollment was (re)established
	autoThreshold bool
	lastHealth    HealthState // last health state published to telemetry
}

// Config parameterizes the engine.
type Config struct {
	ITDR itdr.Config
	// Probe is the launch-edge description shared by both endpoints.
	Probe txline.Probe
	// Pipeline post-processes measurements into fingerprints.
	Pipeline fingerprint.Pipeline
	// AuthThreshold is the similarity acceptance threshold.
	AuthThreshold float64
	// TamperThreshold is the E_xy peak flagging tampering, in volts².
	// Zero means auto-calibrate from the clean noise floor at enrollment.
	TamperThreshold float64
	// TamperThresholdScale multiplies the auto-calibrated tamper threshold
	// (ignored when TamperThreshold is set explicitly). 0 means 1. The
	// experiment harness sweeps it to trade tamper sensitivity for false
	// alarms — and to inject deliberate detector nerfs that the quality
	// regression gate must catch.
	TamperThresholdScale float64
	// EnrollMeasurements is the number of averaged measurements during
	// calibration.
	EnrollMeasurements int
	// Parallelism bounds the worker goroutines of every concurrent
	// operation this engine owns: the ETS-bin fan-out inside one
	// measurement (threaded into ITDR.Parallelism unless that is set
	// explicitly), the wire fan-out of MultiLink rounds, and the link
	// fan-out of MonitorAll. 0 (the default) selects
	// runtime.GOMAXPROCS(0); 1 runs everything inline. Results are
	// bit-identical at every setting.
	Parallelism int
	// Robust tunes the fault-tolerant monitoring protocol: confirm-on-
	// suspect retries, dead-bin masking, and drift-guarded re-enrollment.
	// The zero value disables all of it (the paper's bare §III protocol);
	// DefaultConfig enables DefaultRobustness.
	Robust Robustness
}

// tamperFloorProbes is how many extra measurements (auto-threshold
// calibration only) probe the clean noise floor after enrollment.
const tamperFloorProbes = 4

// tamperScale resolves TamperThresholdScale's 0-means-1 convention.
func (c Config) tamperScale() float64 {
	if c.TamperThresholdScale <= 0 {
		return 1
	}
	return c.TamperThresholdScale
}

// CalibrationMeasurements returns how many instrument measurements one
// endpoint consumes during Calibrate: the enrollment averages plus the
// tamper-floor probes when the threshold is auto-calibrated. Fault schedules
// aimed at monitoring round k of a freshly calibrated link should start at
// measurement sequence number CalibrationMeasurements()+k (sequence numbers
// are 1-based and count every measurement the instrument takes).
func (c Config) CalibrationMeasurements() int {
	n := c.EnrollMeasurements
	if c.TamperThreshold == 0 {
		n += tamperFloorProbes
	}
	return n
}

// DefaultConfig returns the engine configuration matching the prototype.
func DefaultConfig() Config {
	return Config{
		ITDR:               itdr.DefaultConfig(),
		Probe:              txline.DefaultProbe(),
		Pipeline:           fingerprint.DefaultPipeline(),
		AuthThreshold:      0.70,
		TamperThreshold:    0, // auto-calibrated
		EnrollMeasurements: 8,
		Robust:             DefaultRobustness(),
	}
}

// AlertKind classifies a monitoring alarm.
type AlertKind int

const (
	// AlertAuthFailure: the measured fingerprint no longer matches the
	// enrolled one (module swap, bus swap, cold boot).
	AlertAuthFailure AlertKind = iota
	// AlertTamper: a localized IIP change indicates probing or tampering.
	AlertTamper
)

// String names the alert kind.
func (k AlertKind) String() string {
	switch k {
	case AlertAuthFailure:
		return "auth-failure"
	case AlertTamper:
		return "tamper"
	}
	return fmt.Sprintf("AlertKind(%d)", int(k))
}

// Alert is one monitoring alarm.
type Alert struct {
	Side Side
	Kind AlertKind
	// Wire is the index of the wire that raised the alarm on a multi-wire
	// bus; 0 for single-lane links.
	Wire int
	// Score is the similarity for auth failures.
	Score float64
	// PeakError and Position describe tamper alerts.
	PeakError float64
	Position  float64
}

// String renders the alert.
func (a Alert) String() string {
	wire := ""
	if a.Wire != 0 {
		wire = fmt.Sprintf(" (wire %d)", a.Wire)
	}
	switch a.Kind {
	case AlertAuthFailure:
		return fmt.Sprintf("[%s] auth failure: S=%.4f%s", a.Side, a.Score, wire)
	default:
		return fmt.Sprintf("[%s] tamper: E=%.3g at %.1f mm%s", a.Side, a.PeakError, a.Position*1e3, wire)
	}
}

// Link is one DIVOT-protected bus: the physical line plus both endpoints.
type Link struct {
	ID  string
	cfg Config
	// Line is the genuine bus between the endpoints.
	Line *txline.Line
	// Env is the ambient environment monitoring runs under.
	Env txline.Environment

	CPU    *Endpoint
	Module *Endpoint

	calibrated bool
	// Alerts accumulates every alarm raised by monitoring.
	Alerts []Alert

	// sink receives the link's telemetry events (see telemetry.go); rounds
	// counts monitoring rounds and stamps every event of a round.
	sink   telemetry.Sink
	rounds uint64
}

// NewLink builds a protected link over a freshly manufactured line. The
// stream seeds the line's intrinsic IIP and both endpoints' instruments.
func NewLink(id string, cfg Config, lineCfg txline.Config, stream *rng.Stream) (*Link, error) {
	line := txline.New(id, lineCfg, stream.Child("line"))
	return NewLinkOver(id, cfg, line, stream)
}

// NewLinkOver builds a protected link over an existing line.
func NewLinkOver(id string, cfg Config, line *txline.Line, stream *rng.Stream) (*Link, error) {
	// One knob drives every layer: the engine's Parallelism reaches the
	// instrument's bin fan-out unless the iTDR config sets its own.
	if cfg.ITDR.Parallelism == 0 {
		cfg.ITDR.Parallelism = cfg.Parallelism
	}
	mk := func(side Side, label string) (*Endpoint, error) {
		r, err := itdr.New(cfg.ITDR, cfg.Probe, nil, stream.Child(label))
		if err != nil {
			return nil, fmt.Errorf("core: %s endpoint: %w", side, err)
		}
		return &Endpoint{
			Side:     side,
			Gate:     memctl.NewStaticGate(false), // closed until calibration
			refl:     r,
			pipeline: cfg.Pipeline,
			store:    fingerprint.NewStore(),
			matcher:  fingerprint.Matcher{Threshold: cfg.AuthThreshold},
			detector: fingerprint.TamperDetector{
				PeakThreshold: cfg.TamperThreshold,
				Velocity:      line.Config().Velocity,
			},
			observed: line,
			arena:    itdr.NewArena(),
			bins:     cfg.ITDR.Bins(),
		}, nil
	}
	cpu, err := mk(SideCPU, "itdr-cpu")
	if err != nil {
		return nil, err
	}
	mod, err := mk(SideModule, "itdr-module")
	if err != nil {
		return nil, err
	}
	return &Link{
		ID:     id,
		cfg:    cfg,
		Line:   line,
		Env:    txline.RoomTemperature(),
		CPU:    cpu,
		Module: mod,
	}, nil
}

// measure acquires and post-processes one fingerprint at the endpoint.
func (e *Endpoint) measure(env txline.Environment) fingerprint.IIP {
	return e.pipeline.FromWaveform(e.refl.Measure(e.observed, env).IIP)
}

// Authenticated reports the endpoint's latest monitoring verdict.
func (e *Endpoint) Authenticated() bool { return e.authenticated }

// Instrument returns the endpoint's reflectometer — the handle fault
// injection attaches to (itdr.Reflectometer.SetInjector).
func (e *Endpoint) Instrument() *itdr.Reflectometer { return e.refl }

// Mask returns a copy of the endpoint's persistent dead-bin mask (nil when
// no bin has been masked).
func (e *Endpoint) Mask() fingerprint.BinMask { return e.mask.Clone() }

// Observation is one monitored round's raw detection statistics at an
// endpoint, before any threshold turns them into a verdict. The experiment
// harness (internal/experiment) records these traces and sweeps the decision
// thresholds offline to build ROC curves; the live protocol's alerts are the
// operating point on those curves.
type Observation struct {
	// Score is the confirmed similarity of the round (the mean over the
	// original measurement and any confirmation retries when the round was
	// confirmed as a failure).
	Score float64
	// PeakError is the error function's E_xy peak, in volts².
	PeakError float64
	// TamperThreshold is the detector's current peak threshold — the live
	// operating point of the tamper channel. PeakError/TamperThreshold > 1
	// is exactly the round's live tamper verdict, and sweeping that ratio
	// sweeps the tamper threshold without re-measuring.
	TamperThreshold float64
	// Contrast is the peak-to-mean ratio of the error field (localized
	// change reads high, global drift reads low).
	Contrast float64
}

// LastObservation returns the endpoint's detection statistics from the most
// recent MonitorOnce round. Before the first round it is the zero value.
func (e *Endpoint) LastObservation() Observation {
	return Observation{
		Score:           e.lastScore,
		PeakError:       e.lastPeakErr,
		TamperThreshold: e.detector.PeakThreshold,
		Contrast:        e.lastContrast,
	}
}

// ObservedLine returns the line the endpoint currently measures.
func (e *Endpoint) ObservedLine() *txline.Line { return e.observed }

// SetObservedLine rewires what the endpoint physically sees — the cold-boot
// scenario moves the module onto an attacker's bus.
func (e *Endpoint) SetObservedLine(l *txline.Line) { e.observed = l }

// enrollKey is the store key both endpoints use for the link fingerprint.
const enrollKey = "link"

// Calibrate performs §III's pairing step: both endpoints collect averaged
// fingerprints of the shared bus and store them. When the tamper threshold
// is auto-calibrated (zero), it is set to a multiple of the clean-state
// noise floor observed right after enrollment.
//
// Calibrate runs the cold-enrollment fast path: captures stream through the
// endpoint's arena into a running average (O(1) waveforms held instead of
// EnrollMeasurements), the floor probes score through the endpoint's
// workspace and a reused error buffer, and the per-endpoint measurement
// series fans out over Config.Parallelism workers. Fingerprints, thresholds,
// telemetry, and instrument state are bit-identical to the original
// retain-and-average path at any worker count (see calib_determinism_test.go).
func (l *Link) Calibrate() error { return l.CalibrateWith(l.cfg.Parallelism) }

// CalibrateWith is Calibrate with an explicit worker budget for the
// per-endpoint measurement series (<= 0 means GOMAXPROCS, 1 is fully
// sequential). Results are bit-identical at any worker count; the knob only
// decides how many cores the enrollment may use. The daemon's two-level
// cold-start schedule drives this from the calib_parallelism spec field.
func (l *Link) CalibrateWith(workers int) error {
	for _, e := range []*Endpoint{l.CPU, l.Module} {
		if err := e.calibrate(l.cfg, l.Env, workers); err != nil {
			return err
		}
	}
	l.calibrated = true
	l.emit(telemetry.Event{Kind: telemetry.EventCalibrated, Link: l.ID, Round: l.rounds})
	return nil
}

// calibrate enrolls one endpoint: averaged fingerprint, then — when the
// tamper threshold auto-calibrates — the clean-state noise-floor probes.
func (e *Endpoint) calibrate(cfg Config, env txline.Environment, workers int) error {
	e.resetRobustState(cfg)
	e.avg.Reset()
	e.refl.MeasureSeries(e.arena, e.observed, env, cfg.EnrollMeasurements, workers,
		func(_ int, m itdr.Measurement) { e.avg.Add(m.IIP) })
	f, err := e.pipeline.FromAverage(&e.avg)
	if err != nil {
		return fmt.Errorf("core: calibrating %s endpoint: %w", e.Side, err)
	}
	if err := e.store.Enroll(enrollKey, f); err != nil {
		return fmt.Errorf("core: enrolling %s endpoint: %w", e.Side, err)
	}
	if e.detector.PeakThreshold == 0 {
		var floor float64
		e.refl.MeasureSeries(e.arena, e.observed, env, tamperFloorProbes, workers,
			func(_ int, m itdr.Measurement) {
				fm := e.pipeline.FromWaveformWith(&e.ws, m.IIP)
				e.errBuf = fingerprint.ErrorFunctionInto(e.errBuf, fm, f)
				if v, _, _ := fingerprint.PeakError(e.errBuf); v > floor {
					floor = v
				}
			})
		e.detector.PeakThreshold = 3 * cfg.tamperScale() * floor
	}
	e.authenticated = true
	e.Gate.Set(true)
	return nil
}

// Calibrated reports whether enrollment has happened.
func (l *Link) Calibrated() bool { return l.calibrated }

// MonitorOnce runs one hardened monitoring round at both endpoints: measure,
// authenticate against the enrolled fingerprint (over live bins only), check
// for tampering, confirm suspect verdicts with immediate re-measurements,
// consider drift-guarded re-enrollment, drive the gates, and record alerts.
// It returns the alerts raised this round, and a wrapped ErrNotCalibrated /
// ErrEnrollmentLost instead of monitoring an unenrolled link. See robust.go
// for the per-endpoint round.
func (l *Link) MonitorOnce() ([]Alert, error) {
	if !l.calibrated {
		err := fmt.Errorf("link %q: %w", l.ID, ErrNotCalibrated)
		l.emit(telemetry.Event{
			Kind: telemetry.EventMonitorError, Link: l.ID,
			Round: l.rounds, Detail: err.Error(),
		})
		return nil, err
	}
	l.rounds++
	var raised []Alert
	for _, e := range []*Endpoint{l.CPU, l.Module} {
		alerts, err := l.monitorEndpoint(e)
		raised = append(raised, alerts...)
		if err != nil {
			l.emit(telemetry.Event{
				Kind: telemetry.EventMonitorError, Link: l.ID, Side: e.Side.String(),
				Round: l.rounds, Detail: err.Error(),
			})
			return raised, err
		}
	}
	l.Alerts = append(l.Alerts, raised...)
	return raised, nil
}

// MonitorN runs n monitoring rounds and returns all alerts raised, stopping
// at the first protocol error.
func (l *Link) MonitorN(n int) ([]Alert, error) {
	return l.MonitorNCtx(context.Background(), n)
}

// MonitorNCtx is MonitorN with cooperative cancellation: the context is
// checked between rounds, so an in-flight round always completes (a round is
// a bounded, microsecond-scale measurement — tearing one down midway would
// desynchronize the two endpoints' robustness state). On cancellation the
// alerts raised so far are returned together with the context's error.
func (l *Link) MonitorNCtx(ctx context.Context, n int) ([]Alert, error) {
	var all []Alert
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return all, err
		}
		alerts, err := l.MonitorOnce()
		all = append(all, alerts...)
		if err != nil {
			return all, err
		}
	}
	return all, nil
}

// SpotCheck runs one read-only measurement round at both endpoints against
// the enrolled fingerprints: no gates move, no alerts are recorded, no
// confirmation retries run, and no robustness state advances — only the
// measurements are consumed. The facade's Authenticate builds on this.
func (l *Link) SpotCheck() ([]Alert, error) {
	if !l.calibrated {
		return nil, fmt.Errorf("link %q: %w", l.ID, ErrNotCalibrated)
	}
	var raised []Alert
	for _, e := range []*Endpoint{l.CPU, l.Module} {
		enrolled, ok := e.store.Lookup(enrollKey)
		if !ok {
			return raised, fmt.Errorf("%s endpoint of link %q: %w", e.Side, l.ID, ErrEnrollmentLost)
		}
		meas := e.refl.MeasureInto(e.arena, e.observed, l.Env)
		f := e.pipeline.FromWaveformMaskedWith(&e.ws, meas.IIP, e.mask)
		scoring := e.mask.Dilate(l.cfg.Robust.MaskGuard)
		if auth := e.matcher.AuthenticateMasked(f, enrolled, scoring); !auth.Accepted {
			raised = append(raised, Alert{Side: e.Side, Kind: AlertAuthFailure, Score: auth.Score})
		}
		if v := e.detector.CheckMaskedWith(&e.ws, f, enrolled, scoring); v.Tampered {
			raised = append(raised, Alert{
				Side: e.Side, Kind: AlertTamper,
				PeakError: v.PeakError, Position: v.Position,
			})
		}
	}
	return raised, nil
}

// MeasurementDuration returns the wall-clock time one monitoring round takes
// per endpoint — the paper's "within 50 µs" figure.
func (l *Link) MeasurementDuration() float64 {
	return l.cfg.ITDR.MeasurementDuration()
}
