package core

import (
	"fmt"
	"reflect"
	"testing"

	"divot/internal/attack"
	"divot/internal/rng"
	"divot/internal/telemetry"
	"divot/internal/txline"
)

// kinds extracts the event-kind sequence for a link/side filter ("" = all).
func kinds(evs []telemetry.Event, link, side string) []telemetry.EventKind {
	var out []telemetry.EventKind
	for _, ev := range evs {
		if (link == "" || ev.Link == link) && (side == "" || ev.Side == side) {
			out = append(out, ev.Kind)
		}
	}
	return out
}

func TestLinkEmitsRoundAndMeasurementEvents(t *testing.T) {
	l := newLink(t, 11)
	rec := &telemetry.Recorder{}
	l.SetSink(rec)
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	calEvents := rec.Len()
	// Calibration: EnrollMeasurements + tamperFloorProbes measurements per
	// endpoint, plus one calibrated event.
	perEndpoint := l.cfg.CalibrationMeasurements()
	if want := 2*perEndpoint + 1; calEvents != want {
		t.Fatalf("calibration emitted %d events, want %d", calEvents, want)
	}
	mustMonitor(t, l)
	evs := rec.Events()[calEvents:]
	got := kinds(evs, "", "")
	want := []telemetry.EventKind{
		telemetry.EventMeasurement, telemetry.EventRound, // cpu
		telemetry.EventMeasurement, telemetry.EventRound, // module
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clean round events = %v, want %v", got, want)
	}
	for _, ev := range evs {
		if ev.Link != "bus0" {
			t.Errorf("event %v has link %q, want bus0", ev.Kind, ev.Link)
		}
		if ev.Kind == telemetry.EventRound {
			// Measurement events carry the instrument's own sequence number;
			// round events carry the link round.
			if ev.Round != 1 {
				t.Errorf("round event has round %d, want 1", ev.Round)
			}
			if ev.To != "ok" {
				t.Errorf("clean round verdict %q, want ok", ev.To)
			}
		}
	}
}

func TestModuleSwapEmitsAlertGateAndHealthEvents(t *testing.T) {
	// A tight threshold makes the swapped module fail authentication (clean
	// rounds score ~0.98, the foreign line ~0.88), exercising the alert,
	// gate-transition and health-transition events of a confirmed failure.
	cfg := DefaultConfig()
	cfg.AuthThreshold = 0.95
	l, err := NewLink("bus0", cfg, txline.DefaultConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	rec := &telemetry.Recorder{}
	l.SetSink(rec)
	swap := attack.NewModuleSwap(txline.DefaultConfig(), rng.New(5))
	swap.Apply(l.Line)
	if _, err := l.MonitorOnce(); err != nil {
		t.Fatal(err)
	}
	var sawAlert, sawGateClose, sawHealth bool
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case telemetry.EventAlert:
			if ev.Side == "cpu" && ev.To == "auth-failure" {
				sawAlert = true
			}
		case telemetry.EventGate:
			if ev.Side == "cpu" && ev.To == "closed" && ev.From == "open" {
				sawGateClose = true
			}
		case telemetry.EventHealth:
			if ev.Side == "cpu" && ev.From == "ok" && ev.To == "failed" {
				sawHealth = true
			}
		}
	}
	if !sawAlert || !sawGateClose || !sawHealth {
		t.Fatalf("swap round missed events: alert=%v gateClose=%v health=%v\n%v",
			sawAlert, sawGateClose, sawHealth, rec.Events())
	}
	// Restoration must re-open the gate and restore health, each as a
	// transition event.
	rec2 := &telemetry.Recorder{}
	l.SetSink(rec2)
	swap.Remove(l.Line)
	if _, err := l.MonitorOnce(); err != nil {
		t.Fatal(err)
	}
	var sawReopen, sawRecover bool
	for _, ev := range rec2.Events() {
		if ev.Kind == telemetry.EventGate && ev.Side == "cpu" && ev.To == "open" {
			sawReopen = true
		}
		if ev.Kind == telemetry.EventHealth && ev.Side == "cpu" && ev.To == "ok" {
			sawRecover = true
		}
	}
	if !sawReopen || !sawRecover {
		t.Fatalf("restoration missed events: reopen=%v recover=%v\n%v",
			sawReopen, sawRecover, rec2.Events())
	}
}

// monitorFleet builds n instrumented links over one shared recorder,
// calibrates them, and runs rounds through MonitorAll at the given
// parallelism, returning every event published.
func monitorFleet(t *testing.T, n, rounds, parallelism int) []telemetry.Event {
	t.Helper()
	rec := &telemetry.Recorder{}
	links := make([]*Link, n)
	for i := range links {
		cfg := DefaultConfig()
		cfg.Parallelism = parallelism
		l, err := NewLink(fmt.Sprintf("bus%d", i), cfg, txline.DefaultConfig(), rng.New(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Calibrate(); err != nil {
			t.Fatal(err)
		}
		l.SetSink(rec)
		links[i] = l
	}
	for r := 0; r < rounds; r++ {
		if _, err := MonitorAll(links, parallelism); err != nil {
			t.Fatal(err)
		}
	}
	return rec.Events()
}

func TestMonitorAllEventOrderParallelismInvariant(t *testing.T) {
	seq := monitorFleet(t, 3, 2, 1)
	par := monitorFleet(t, 3, 2, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("event sequence differs between parallelism 1 and 4:\nP1: %v\nP4: %v", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("no events published")
	}
	// Sinks must be restored after the parallel section: a follow-up
	// sequential round still reaches the shared recorder directly.
}

func TestMultiLinkEventOrderParallelismInvariant(t *testing.T) {
	run := func(parallelism int) []telemetry.Event {
		cfg := DefaultConfig()
		cfg.Parallelism = parallelism
		m, err := NewMultiLink("bus", cfg, txline.DefaultConfig(), 3, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		rec := &telemetry.Recorder{}
		m.SetSink(rec)
		if err := m.Calibrate(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2; r++ {
			if _, err := m.MonitorOnce(); err != nil {
				t.Fatal(err)
			}
		}
		return rec.Events()
	}
	seq := run(1)
	par := run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("multi-link event sequence differs between parallelism 1 and 4:\nP1: %v\nP4: %v", seq, par)
	}
	var fusedRounds int
	for _, ev := range seq {
		if ev.Kind == telemetry.EventRound && ev.Link == "bus" {
			fusedRounds++
		}
	}
	if fusedRounds != 4 { // 2 rounds × 2 sides
		t.Fatalf("fused round events = %d, want 4", fusedRounds)
	}
}
