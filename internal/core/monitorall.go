package core

import (
	"context"
	"errors"

	"divot/internal/pool"
)

// MonitorAll runs one monitoring round on every link concurrently, with at
// most `parallelism` worker goroutines (0 = runtime.GOMAXPROCS(0), 1 =
// sequential). Each link owns disjoint instruments, random streams, gates and
// alert history, so the rounds are independent and the combined outcome —
// returned alerts, gate states, and each instrument's measurement history —
// is bit-identical to calling MonitorOnce on each link in slice order.
//
// The returned slice is indexed like links: element i holds the alerts link i
// raised this round. Per-link protocol errors (uncalibrated link, lost
// enrollment) are joined and returned alongside the rounds that succeeded;
// a failed link's alert slice is whatever its round raised before failing.
//
// The one sharing caveat: monitoring reads each endpoint's observed line but
// never mutates it, so two links may safely observe the same physical line
// (the cold-boot scenario). Mounting or removing attacks concurrently with
// MonitorAll is a data race, exactly as it is with MonitorOnce.
//
// Telemetry: when links carry sinks, each link's events are buffered in a
// private recorder for the duration of the concurrent section and drained into
// the original sinks in slice order afterwards, so a shared sink observes the
// same event sequence at every worker count.
func MonitorAll(links []*Link, parallelism int) ([][]Alert, error) {
	out, _, err := MonitorAllCtx(context.Background(), links, parallelism)
	return out, err
}

// MonitorAllCtx is MonitorAll with cooperative cancellation: once ctx is
// done no further link starts its round, while rounds already in flight run
// to completion (tearing a round down midway would desynchronize an
// endpoint's robustness state). The returned ran slice reports which links
// actually monitored; ctx's error, when set, is joined into the returned
// error. Determinism is unaffected for the links that ran — cancellation
// only trims the tail of the work list.
func MonitorAllCtx(ctx context.Context, links []*Link, parallelism int) ([][]Alert, []bool, error) {
	out := make([][]Alert, len(links))
	ran := make([]bool, len(links))
	errs := make([]error, len(links))
	workers := pool.Workers(parallelism)
	if workers > 1 && len(links) > 1 {
		recs, orig := swapRecorders(links)
		defer restoreAndDrain(links, recs, orig)
	}
	pool.Run(len(links), workers, func(_, i int) {
		if ctx.Err() != nil {
			return
		}
		ran[i] = true
		out[i], errs[i] = links[i].MonitorOnce()
	})
	return out, ran, errors.Join(append(errs, ctx.Err())...)
}
