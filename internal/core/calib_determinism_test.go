package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"divot/internal/fingerprint"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// legacyCalibrate is a verbatim copy of Link.Calibrate as it shipped before
// the arena/series cold-enrollment fast path: per-measurement waveform
// slices, Pipeline.Average over all of them, allocating ErrorFunction floor
// probes. It is the reference the fast path must reproduce byte-for-byte —
// fingerprints, thresholds, and instrument state alike.
func legacyCalibrate(l *Link) error {
	for _, e := range []*Endpoint{l.CPU, l.Module} {
		e.resetRobustState(l.cfg)
		ws := make([]*signal.Waveform, l.cfg.EnrollMeasurements)
		for i := range ws {
			ws[i] = e.refl.Measure(e.observed, l.Env).IIP
		}
		f, err := e.pipeline.Average(ws)
		if err != nil {
			return fmt.Errorf("core: calibrating %s endpoint: %w", e.Side, err)
		}
		if err := e.store.Enroll(enrollKey, f); err != nil {
			return fmt.Errorf("core: enrolling %s endpoint: %w", e.Side, err)
		}
		if e.detector.PeakThreshold == 0 {
			var floor float64
			for i := 0; i < tamperFloorProbes; i++ {
				fm := e.measure(l.Env)
				if v, _, _ := fingerprint.PeakError(fingerprint.ErrorFunction(fm, f)); v > floor {
					floor = v
				}
			}
			e.detector.PeakThreshold = 3 * l.cfg.tamperScale() * floor
		}
		e.authenticated = true
		e.Gate.Set(true)
	}
	l.calibrated = true
	return nil
}

// newDetLink builds a link from a fixed universe for the determinism tests;
// every call returns a bit-identical twin.
func newDetLink(t *testing.T, parallelism int) *Link {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Parallelism = parallelism
	l, err := NewLink("det0", cfg, txline.DefaultConfig(), rng.New(4242))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// exportEnrollments serializes both endpoints' enrollments.
func exportEnrollments(t *testing.T, l *Link) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.CPU.ExportEnrollment(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.Module.ExportEnrollment(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// thresholds returns the two endpoints' derived tamper thresholds as raw
// float bits, so comparisons are exact, not within-epsilon.
func thresholds(l *Link) [2]uint64 {
	return [2]uint64{
		math.Float64bits(l.CPU.detector.PeakThreshold),
		math.Float64bits(l.Module.detector.PeakThreshold),
	}
}

// TestCalibrateMatchesLegacyPath proves the arena/series enrollment path is
// a pure optimization: on twin links, the legacy slice-and-Average
// calibration and the streaming fast path produce byte-identical enrollment
// exports and bit-identical auto-derived tamper thresholds.
func TestCalibrateMatchesLegacyPath(t *testing.T) {
	legacy := newDetLink(t, 1)
	if err := legacyCalibrate(legacy); err != nil {
		t.Fatal(err)
	}
	fast := newDetLink(t, 1)
	if err := fast.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exportEnrollments(t, legacy), exportEnrollments(t, fast)) {
		t.Error("arena-path enrollment differs from the legacy path")
	}
	if lt, ft := thresholds(legacy), thresholds(fast); lt != ft {
		t.Errorf("tamper thresholds differ: legacy %v, fast %v", lt, ft)
	}
	// The paths must also leave the instruments in the same state: the next
	// monitoring round on each twin sees the same scores.
	la, err := legacy.MonitorOnce()
	if err != nil {
		t.Fatal(err)
	}
	fa, err := fast.MonitorOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(la) != 0 || len(fa) != 0 {
		t.Fatalf("clean twins raised alerts: legacy %d, fast %d", len(la), len(fa))
	}
	if l, f := math.Float64bits(legacy.CPU.lastScore), math.Float64bits(fast.CPU.lastScore); l != f {
		t.Errorf("post-calibration round diverged: legacy score %x, fast %x", l, f)
	}
}

// TestCalibrateWorkerInvariance pins the PR-1 contract on the enrollment
// fan-out: CalibrateWith produces byte-identical enrollments and thresholds
// at any worker count, so calib_parallelism can never change what a fleet
// enrolls as.
func TestCalibrateWorkerInvariance(t *testing.T) {
	base := newDetLink(t, 1)
	if err := base.CalibrateWith(1); err != nil {
		t.Fatal(err)
	}
	want := exportEnrollments(t, base)
	wantThr := thresholds(base)
	for _, workers := range []int{2, 8} {
		l := newDetLink(t, 1)
		if err := l.CalibrateWith(workers); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, exportEnrollments(t, l)) {
			t.Errorf("enrollment at %d workers differs from sequential", workers)
		}
		if got := thresholds(l); got != wantThr {
			t.Errorf("thresholds at %d workers = %v, want %v", workers, got, wantThr)
		}
	}
}
