package core

import (
	"errors"
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/memctl"
	"divot/internal/pool"
	"divot/internal/rng"
	"divot/internal/telemetry"
	"divot/internal/txline"
)

// MultiLink protects a bus as a bundle of wires, each with its own intrinsic
// IIP and its own pair of iTDRs, fusing per-wire similarities into one
// authentication decision per side (§IV-C / §VI: "monitoring multiple wires
// on a bus can exponentially increase authentication accuracy"). One fused
// gate per side drives the memory system, so a single compromised or
// swapped wire locks the whole bus.
type MultiLink struct {
	ID  string
	cfg Config
	// Wires are the per-wire protected links. Their individual gates are
	// unused; the fused gates below rule.
	Wires []*Link
	// CPUGate and ModuleGate reflect the fused two-way decision.
	CPUGate    *memctl.StaticGate
	ModuleGate *memctl.StaticGate
	// Alerts accumulates per-wire and fused alarms.
	Alerts []Alert

	calibrated bool

	// sink receives the bus-level telemetry events (fused alerts, fused gate
	// transitions); the wires carry the same sink for their instrument-level
	// events. rounds counts fused monitoring rounds.
	sink   telemetry.Sink
	rounds uint64
}

// NewMultiLink manufactures a bus of n wires.
func NewMultiLink(id string, cfg Config, lineCfg txline.Config, n int, stream *rng.Stream) (*MultiLink, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: multi-link needs at least one wire, got %d", n)
	}
	m := &MultiLink{
		ID:         id,
		cfg:        cfg,
		CPUGate:    memctl.NewStaticGate(false),
		ModuleGate: memctl.NewStaticGate(false),
	}
	for w := 0; w < n; w++ {
		l, err := NewLink(fmt.Sprintf("%s/w%d", id, w), cfg, lineCfg, stream.Child(fmt.Sprintf("wire-%d", w)))
		if err != nil {
			return nil, err
		}
		m.Wires = append(m.Wires, l)
	}
	return m, nil
}

// Calibrate enrolls every wire and opens the fused gates. Wires own disjoint
// lines and instruments, so enrollment fans out across the engine's
// Parallelism workers with results identical to enrolling in order. The
// worker budget splits two-level — across wires first, leftover workers
// handed to each wire's intra-link measurement fan-out — so a wide bus and a
// narrow one both saturate the same core budget without oversubscribing.
func (m *MultiLink) Calibrate() error {
	errs := make([]error, len(m.Wires))
	recs, orig := m.maybeSwapRecorders()
	across, within := pool.Split(m.cfg.Parallelism, len(m.Wires))
	pool.Run(len(m.Wires), across, func(_, w int) {
		errs[w] = m.Wires[w].CalibrateWith(within)
	})
	m.maybeDrainRecorders(recs, orig)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	m.calibrated = true
	m.CPUGate.Set(true)
	m.ModuleGate.Set(true)
	m.emit(telemetry.Event{Kind: telemetry.EventCalibrated, Link: m.ID, Round: m.rounds})
	return nil
}

// Calibrated reports whether enrollment has happened.
func (m *MultiLink) Calibrated() bool { return m.calibrated }

// gateFor returns the fused gate for a side.
func (m *MultiLink) gateFor(s Side) *memctl.StaticGate {
	if s == SideCPU {
		return m.CPUGate
	}
	return m.ModuleGate
}

// MonitorOnce measures every wire at both endpoints, fuses the per-wire
// similarities per side, drives the fused gates, and reports alarms.
// Per-wire scoring runs over the wire's live bins (dead-bin masking as on
// single links), tagged with the wire index. It returns a wrapped
// ErrNotCalibrated / ErrEnrollmentLost instead of monitoring an unenrolled
// bus; wire errors from one round are joined.
func (m *MultiLink) MonitorOnce() ([]Alert, error) {
	if !m.calibrated {
		err := fmt.Errorf("multi-link %q: %w", m.ID, ErrNotCalibrated)
		m.emit(telemetry.Event{
			Kind: telemetry.EventMonitorError, Link: m.ID,
			Round: m.rounds, Detail: err.Error(),
		})
		return nil, err
	}
	m.rounds++
	var raised []Alert
	for _, side := range []Side{SideCPU, SideModule} {
		// Wires are measured concurrently — each wire touches only its own
		// instrument and its own result slot — then scored, reported and
		// fused in wire order, so the round is bit-identical to the
		// sequential loop at any worker count. Wire telemetry buffers in
		// per-wire recorders across the fan-out and drains in wire order.
		scores := make([]float64, len(m.Wires))
		tampers := make([]*fingerprint.TamperVerdict, len(m.Wires))
		errs := make([]error, len(m.Wires))
		recs, orig := m.maybeSwapRecorders()
		pool.Run(len(m.Wires), pool.Workers(m.cfg.Parallelism), func(_, w int) {
			l := m.Wires[w]
			e := l.endpoint(side)
			enrolled, ok := e.store.Lookup(enrollKey)
			if !ok {
				errs[w] = fmt.Errorf("wire %d %s endpoint of multi-link %q: %w",
					w, side, m.ID, ErrEnrollmentLost)
				return
			}
			meas := e.refl.MeasureInto(e.arena, e.observed, l.Env)
			e.trackSaturation(meas.Saturated, l.cfg.Robust)
			f := e.pipeline.FromWaveformMaskedWith(&e.ws, meas.IIP, e.mask)
			scoring := e.mask.Dilate(l.cfg.Robust.MaskGuard)
			scores[w] = fingerprint.MaskedSimilarity(f, enrolled, scoring)
			e.lastScore = scores[w]
			e.authenticated = scores[w] >= m.cfg.AuthThreshold
			if v := e.detector.CheckMaskedWith(&e.ws, f, enrolled, scoring); v.Tampered {
				tampers[w] = &v
			}
		})
		m.maybeDrainRecorders(recs, orig)
		if err := errors.Join(errs...); err != nil {
			m.emit(telemetry.Event{
				Kind: telemetry.EventMonitorError, Link: m.ID, Side: side.String(),
				Round: m.rounds, Detail: err.Error(),
			})
			return raised, err
		}
		tampered := false
		for w, v := range tampers {
			if v != nil {
				tampered = true
				a := Alert{
					Side: side, Kind: AlertTamper, Wire: w,
					PeakError: v.PeakError, Position: v.Position,
				}
				raised = append(raised, a)
				m.emit(telemetry.Event{
					Kind: telemetry.EventAlert, Link: m.ID, Side: side.String(),
					Round: m.rounds, Score: a.PeakError, To: a.Kind.String(), Detail: a.String(),
				})
			}
		}
		// Security rule: every wire must match (AND). The multi-wire
		// accuracy gain is exponential on the impostor side — a foreign
		// bus must match all n intrinsic profiles at once, probability
		// ~p^n — while a mean-style fusion would let one compromised wire
		// hide behind its healthy neighbours.
		worst, at := scores[0], 0
		for w, s := range scores {
			if s < worst {
				worst, at = s, w
			}
		}
		ok := worst >= m.cfg.AuthThreshold
		m.emit(telemetry.Event{
			Kind: telemetry.EventRound, Link: m.ID, Side: side.String(),
			Round: m.rounds, Score: worst,
			To: roundVerdict(!ok, tampered, false),
		})
		if !ok {
			a := Alert{Side: side, Kind: AlertAuthFailure, Wire: at, Score: worst}
			raised = append(raised, a)
			m.emit(telemetry.Event{
				Kind: telemetry.EventAlert, Link: m.ID, Side: side.String(),
				Round: m.rounds, Score: worst, To: a.Kind.String(), Detail: a.String(),
			})
		}
		gate := m.gateFor(side)
		was := gate.Authorized()
		gate.Set(ok)
		if was != ok {
			m.emit(telemetry.Event{
				Kind: telemetry.EventGate, Link: m.ID, Side: side.String(),
				Round: m.rounds, From: gateName(was), To: gateName(ok),
			})
		}
	}
	m.Alerts = append(m.Alerts, raised...)
	return raised, nil
}

// Health snapshots every wire's condition, one LinkHealth per wire.
func (m *MultiLink) Health() []LinkHealth {
	out := make([]LinkHealth, len(m.Wires))
	for w, l := range m.Wires {
		out[w] = l.Health()
	}
	return out
}

// endpoint returns the link's endpoint for a side.
func (l *Link) endpoint(s Side) *Endpoint {
	if s == SideCPU {
		return l.CPU
	}
	return l.Module
}
