package core

// The fault-tolerant monitoring protocol. The paper's bare §III round is
// measure → match → gate; one bad measurement closes a gate and one drifting
// comparator ages a link into permanent failure. This file hardens that round
// against instrument faults while keeping attacks detectable:
//
//   - confirm-on-suspect: a failed verdict triggers up to ConfirmRetries
//     immediate re-measurements; the majority over all of them decides. A
//     transient glitch (EMI burst, one-shot counter upset) loses the vote and
//     the round degrades to "suspect" — logged via health, no alert, gates
//     untouched. A real attack persists across the retries and still alerts.
//   - graceful degradation: a bin whose reconstruction saturates at a rail on
//     DeadBinStreak consecutive measurements is declared dead and masked;
//     matching repairs and renormalizes around the mask (fingerprint.BinMask)
//     and health reports DegradedResolution instead of the link failing.
//   - drift-guarded re-enrollment: each endpoint tracks a rolling window of
//     accepted scores. Slow global decay (aging, seasonal drift) refreshes
//     the enrolled fingerprint; abrupt or localized change — the attack
//     signature — refuses the refresh, so an interposer cannot ride in on
//     drift tolerance.

import (
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/signal"
	"divot/internal/telemetry"
)

// Robustness tunes the fault-tolerant monitoring protocol. The zero value
// disables every mechanism, reproducing the bare §III round.
type Robustness struct {
	// ConfirmRetries is how many immediate re-measurements confirm a failed
	// round before an alert is raised or a gate closed; the verdict is the
	// majority over the original measurement plus retries. 0 disables
	// confirmation.
	ConfirmRetries int
	// DeadBinStreak is how many consecutive rail-saturated sightings
	// declare an ETS bin dead and mask it. 0 disables masking.
	DeadBinStreak int
	// MaskGuard widens the scoring mask by this many bins on each side of
	// every dead bin, keeping smoothing leakage from repaired bins out of
	// the match.
	MaskGuard int
	// MinLiveBins is the minimum number of unmasked bins required to score
	// a measurement at all; below it the endpoint fails authentication
	// (too little fingerprint left to decide).
	MinLiveBins int
	// MaxMaskedFraction is the masked share of all bins beyond which the
	// endpoint's health reports failure rather than degradation.
	MaxMaskedFraction float64
	// Reenroll governs drift-guarded fingerprint refresh.
	Reenroll ReenrollPolicy
}

// ReenrollPolicy decides when a slowly drifting link may refresh its
// enrolled fingerprint — and, crucially, when it must not.
type ReenrollPolicy struct {
	// Enabled turns the mechanism on.
	Enabled bool
	// Window is the number of accepted scores in the rolling baseline.
	Window int
	// RefreshBelow triggers a refresh when the window mean decays below
	// this similarity while the remaining guards pass.
	RefreshBelow float64
	// Floor refuses refresh when the latest score is already below this —
	// change that deep is not "slow drift".
	Floor float64
	// MaxStep refuses refresh when any round-to-round score drop within
	// the window exceeds this — abrupt change is an attack signature.
	MaxStep float64
	// MaxContrast refuses refresh when the error function's peak-to-mean
	// contrast exceeds this — localized change (interposer, tap) is an
	// attack signature even when the score decay looks slow. 0 disables
	// the guard.
	MaxContrast float64
	// Cooldown is the minimum number of accepted rounds between refreshes
	// (and after initial calibration).
	Cooldown int
}

// DefaultRobustness enables the full hardened protocol with conservative
// settings: 2 confirmation retries (majority of 3), dead-bin masking after 2
// consecutive saturated sightings with a ±2 bin guard, and drift refresh
// once an 8-round baseline decays below 0.975 — but never on abrupt
// (>0.08/round), deep (<0.75), or localized (contrast >25× the live-bin
// mean) change. RefreshBelow sits between the clean baseline (~0.98 window
// mean, spread ~0.003) and the score at which drift starts crossing the auto
// tamper threshold (seed-dependent, as high as ~0.965), so a drifting link
// refreshes before it alarms; an unnecessary refresh on a merely unlucky
// clean window is harmless, since every anti-attack guard still applies.
func DefaultRobustness() Robustness {
	return Robustness{
		ConfirmRetries:    2,
		DeadBinStreak:     2,
		MaskGuard:         2,
		MinLiveBins:       32,
		MaxMaskedFraction: 0.25,
		Reenroll: ReenrollPolicy{
			Enabled:      true,
			Window:       8,
			RefreshBelow: 0.975,
			Floor:        0.75,
			MaxStep:      0.08,
			MaxContrast:  25,
			Cooldown:     16,
		},
	}
}

// resetRobustState clears the endpoint's robustness bookkeeping — fresh
// calibration means a fresh instrument-health picture.
func (e *Endpoint) resetRobustState(cfg Config) {
	e.bins = cfg.ITDR.Bins()
	e.satStreak = make([]int, e.bins)
	e.mask = nil
	e.window = nil
	e.lastScore = 0
	e.lastPeakErr = 0
	e.lastContrast = 0
	e.reenrollments = 0
	e.suspectRounds = 0
	e.lastSuspect = false
	e.failures = 0
	e.sinceReenroll = 0
	e.autoThreshold = cfg.TamperThreshold == 0
	e.lastHealth = HealthOK
}

// trackSaturation advances the per-bin saturation streaks and promotes bins
// that stayed rail-saturated for DeadBinStreak consecutive measurements into
// the persistent mask. Transient saturation (an EMI burst, a stuck round)
// resets and never masks — an attacker cannot hide a dent by saturating bins
// for a single measurement.
func (e *Endpoint) trackSaturation(sat []bool, rob Robustness) {
	if rob.DeadBinStreak <= 0 || len(sat) == 0 {
		return
	}
	if len(e.satStreak) != len(sat) {
		e.satStreak = make([]int, len(sat))
	}
	for i, s := range sat {
		if !s {
			e.satStreak[i] = 0
			continue
		}
		e.satStreak[i]++
		if e.satStreak[i] >= rob.DeadBinStreak && (e.mask == nil || !e.mask[i]) {
			if e.mask == nil {
				e.mask = fingerprint.NewBinMask(len(sat))
			}
			e.mask[i] = true
		}
	}
}

// roundView is one scored measurement of an endpoint.
type roundView struct {
	auth   fingerprint.AuthResult
	tv     fingerprint.TamperVerdict
	lowRes bool // too few live bins to decide anything
}

// observe takes one measurement and scores it against the enrollment with
// the endpoint's current mask: repair dead bins, smooth, match over the
// dilated live support. The whole round runs inside the endpoint's arena
// and workspace — nothing observed here outlives the call, so the buffers
// are recycled round after round.
func (l *Link) observe(e *Endpoint, enrolled fingerprint.IIP) roundView {
	rob := l.cfg.Robust
	meas := e.refl.MeasureInto(e.arena, e.observed, l.Env)
	e.trackSaturation(meas.Saturated, rob)
	f := e.pipeline.FromWaveformMaskedWith(&e.ws, meas.IIP, e.mask)
	scoring := e.mask.Dilate(rob.MaskGuard)
	v := roundView{
		auth: e.matcher.AuthenticateMasked(f, enrolled, scoring),
		tv:   e.detector.CheckMaskedWith(&e.ws, f, enrolled, scoring),
	}
	if live := e.bins - scoring.Count(); rob.MinLiveBins > 0 && live < rob.MinLiveBins {
		v.lowRes = true
	}
	return v
}

// monitorEndpoint runs the hardened round at one endpoint and returns the
// alerts it raises.
func (l *Link) monitorEndpoint(e *Endpoint) ([]Alert, error) {
	enrolled, ok := e.store.Lookup(enrollKey)
	if !ok {
		return nil, fmt.Errorf("%s endpoint of link %q: %w", e.Side, l.ID, ErrEnrollmentLost)
	}
	rob := l.cfg.Robust

	v := l.observe(e, enrolled)
	authFail := !v.auth.Accepted || v.lowRes
	// When too little fingerprint is left the error field is mostly repair
	// residue; report the failure as an auth failure only.
	tamper := v.tv.Tampered && !v.lowRes
	score := v.auth.Score
	suspect := false
	retries := 0

	if (authFail || tamper) && rob.ConfirmRetries > 0 {
		retries = rob.ConfirmRetries
		failVotes, tamperVotes, votes := b2i(authFail), b2i(tamper), 1
		scoreSum := score
		for i := 0; i < rob.ConfirmRetries; i++ {
			cv := l.observe(e, enrolled)
			if !cv.auth.Accepted || cv.lowRes {
				failVotes++
			}
			if cv.tv.Tampered && !cv.lowRes {
				tamperVotes++
				v.tv = cv.tv // report the freshest tampered view
			}
			scoreSum += cv.auth.Score
			votes++
		}
		authFail = 2*failVotes > votes
		tamper = 2*tamperVotes > votes
		if !authFail && !tamper {
			// The failure did not reproduce: a transient fault, absorbed.
			suspect = true
			e.suspectRounds++
		} else {
			score = scoreSum / float64(votes)
		}
	}
	e.lastSuspect = suspect

	l.emit(telemetry.Event{
		Kind: telemetry.EventRound, Link: l.ID, Side: e.Side.String(),
		Round: l.rounds, Score: score, Retries: retries,
		To: roundVerdict(authFail, tamper, suspect),
	})
	if suspect {
		l.emit(telemetry.Event{
			Kind: telemetry.EventSuspect, Link: l.ID, Side: e.Side.String(),
			Round: l.rounds, Score: score, Retries: retries,
		})
	}

	var raised []Alert
	if authFail {
		e.failures++
		a := Alert{Side: e.Side, Kind: AlertAuthFailure, Score: score}
		raised = append(raised, a)
		l.emit(telemetry.Event{
			Kind: telemetry.EventAlert, Link: l.ID, Side: e.Side.String(),
			Round: l.rounds, Score: score, To: a.Kind.String(), Detail: a.String(),
		})
	}
	// Tamper detection still reports alongside auth failure: a severe attack
	// (wire tap) can break authentication *and* deserve a localized report.
	if tamper {
		a := Alert{
			Side: e.Side, Kind: AlertTamper,
			PeakError: v.tv.PeakError, Position: v.tv.Position,
		}
		raised = append(raised, a)
		l.emit(telemetry.Event{
			Kind: telemetry.EventAlert, Link: l.ID, Side: e.Side.String(),
			Round: l.rounds, Score: a.PeakError, To: a.Kind.String(), Detail: a.String(),
		})
	}
	// React (§III): the gate follows the authentication verdict. A tamper
	// alert alone does not close the gate — the paper escalates tampering to
	// system-level countermeasures — but it is reported.
	e.authenticated = !authFail
	l.gateSet(e, !authFail)
	e.lastScore = score
	e.lastPeakErr = v.tv.PeakError
	e.lastContrast = v.tv.Contrast

	// Only plainly accepted rounds feed the drift baseline: suspect rounds
	// carry a transient's garbage and confirmed failures are not drift.
	if !authFail && !tamper && !suspect {
		e.pushScore(v.auth.Score, rob.Reenroll.Window)
		e.sinceReenroll++
		if err := l.maybeReenroll(e, v); err != nil {
			return raised, err
		}
	}
	l.emitHealthTransition(e)
	return raised, nil
}

// roundVerdict names the confirmed outcome of one endpoint round.
func roundVerdict(authFail, tamper, suspect bool) string {
	switch {
	case authFail && tamper:
		return "auth-failure+tamper"
	case authFail:
		return "auth-failure"
	case tamper:
		return "tamper"
	case suspect:
		return "suspect"
	}
	return "ok"
}

// pushScore appends an accepted score to the rolling window. Once the
// window is full it shifts in place instead of reslicing, so the backing
// array is reused round after round.
func (e *Endpoint) pushScore(s float64, window int) {
	if window <= 0 {
		return
	}
	if len(e.window) < window {
		e.window = append(e.window, s)
		return
	}
	copy(e.window, e.window[len(e.window)-window+1:])
	e.window = e.window[:window]
	e.window[window-1] = s
}

// baseline returns the rolling-window mean (0 with no data).
func (e *Endpoint) baseline() float64 {
	if len(e.window) == 0 {
		return 0
	}
	var acc float64
	for _, s := range e.window {
		acc += s
	}
	return acc / float64(len(e.window))
}

// maybeReenroll applies the drift guards and refreshes the enrollment when
// every one of them reads "slow global drift".
func (l *Link) maybeReenroll(e *Endpoint, v roundView) error {
	pol := l.cfg.Robust.Reenroll
	if !pol.Enabled || len(e.window) < pol.Window || e.sinceReenroll < pol.Cooldown {
		return nil
	}
	if e.baseline() >= pol.RefreshBelow {
		return nil // no decay worth refreshing for
	}
	latest := e.window[len(e.window)-1]
	if latest < pol.Floor {
		return nil // too deep to be drift
	}
	for i := 1; i < len(e.window); i++ {
		if e.window[i-1]-e.window[i] > pol.MaxStep {
			return nil // abrupt drop inside the window: attack signature
		}
	}
	if pol.MaxContrast > 0 && v.tv.Contrast > pol.MaxContrast {
		return nil // localized error peak: attack signature
	}
	return l.reenroll(e)
}

// reenroll refreshes the endpoint's enrolled fingerprint from fresh averaged
// measurements (repaired over the persistent mask) and re-derives the auto
// tamper floor, exactly like calibration but without touching the other
// endpoint or the calibrated flag.
func (l *Link) reenroll(e *Endpoint) error {
	rob := l.cfg.Robust
	ws := make([]*signal.Waveform, l.cfg.EnrollMeasurements)
	for i := range ws {
		m := e.refl.Measure(e.observed, l.Env)
		e.trackSaturation(m.Saturated, rob)
		ws[i] = m.IIP
	}
	f, err := e.pipeline.AverageMasked(ws, e.mask)
	if err != nil {
		return fmt.Errorf("re-enrolling %s endpoint of link %q: %w", e.Side, l.ID, err)
	}
	if err := e.store.Enroll(enrollKey, f); err != nil {
		return fmt.Errorf("re-enrolling %s endpoint of link %q: %w", e.Side, l.ID, err)
	}
	if e.autoThreshold {
		scoring := e.mask.Dilate(rob.MaskGuard)
		var floor float64
		for i := 0; i < tamperFloorProbes; i++ {
			m := e.refl.Measure(e.observed, l.Env)
			e.trackSaturation(m.Saturated, rob)
			fm := e.pipeline.FromWaveformMasked(m.IIP, e.mask)
			ef := fingerprint.MaskedErrorFunction(fm, f, scoring)
			if v, _, _ := fingerprint.PeakError(ef); v > floor {
				floor = v
			}
		}
		if floor > 0 {
			e.detector.PeakThreshold = 3 * l.cfg.tamperScale() * floor
		}
	}
	e.window = e.window[:0]
	e.sinceReenroll = 0
	e.reenrollments++
	l.emit(telemetry.Event{
		Kind: telemetry.EventReenroll, Link: l.ID, Side: e.Side.String(),
		Round: l.rounds, Score: e.lastScore,
	})
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
