package core

import (
	"errors"
	"testing"

	"divot/internal/attack"
	"divot/internal/rng"
	"divot/internal/txline"
)

func newLink(t *testing.T, seed uint64) *Link {
	t.Helper()
	l, err := NewLink("bus0", DefaultConfig(), txline.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func calibrated(t *testing.T, seed uint64) *Link {
	t.Helper()
	l := newLink(t, seed)
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	return l
}

// mustMonitor runs one round, failing the test on a protocol error.
func mustMonitor(t *testing.T, l *Link) []Alert {
	t.Helper()
	alerts, err := l.MonitorOnce()
	if err != nil {
		t.Fatal(err)
	}
	return alerts
}

// mustMonitorN runs n rounds, failing the test on a protocol error.
func mustMonitorN(t *testing.T, l *Link, n int) []Alert {
	t.Helper()
	alerts, err := l.MonitorN(n)
	if err != nil {
		t.Fatal(err)
	}
	return alerts
}

func TestGatesClosedBeforeCalibration(t *testing.T) {
	l := newLink(t, 1)
	if l.CPU.Gate.Authorized() || l.Module.Gate.Authorized() {
		t.Error("gates must start closed")
	}
	if l.Calibrated() {
		t.Error("link should not report calibrated")
	}
	if _, err := l.MonitorOnce(); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("monitoring before calibration: err = %v, want ErrNotCalibrated", err)
	}
	if _, err := l.MonitorN(3); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("MonitorN before calibration: err = %v, want ErrNotCalibrated", err)
	}
	if _, err := l.SpotCheck(); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("SpotCheck before calibration: err = %v, want ErrNotCalibrated", err)
	}
}

func TestCalibrationOpensGates(t *testing.T) {
	l := calibrated(t, 2)
	if !l.CPU.Gate.Authorized() || !l.Module.Gate.Authorized() {
		t.Error("calibration should open both gates")
	}
	if !l.Calibrated() || !l.CPU.Authenticated() || !l.Module.Authenticated() {
		t.Error("post-calibration state wrong")
	}
}

func TestCleanMonitoringRaisesNothing(t *testing.T) {
	l := calibrated(t, 3)
	alerts := mustMonitorN(t, l, 5)
	if len(alerts) != 0 {
		t.Errorf("clean link raised %d alerts: %v", len(alerts), alerts)
	}
	if !l.CPU.Gate.Authorized() || !l.Module.Gate.Authorized() {
		t.Error("gates should stay open on a clean link")
	}
}

func TestModuleSwapRejectedByCPU(t *testing.T) {
	l := calibrated(t, 4)
	swap := attack.NewModuleSwap(txline.DefaultConfig(), rng.New(5))
	swap.Apply(l.Line)
	alerts := mustMonitor(t, l)
	var cpuAlarm bool
	for _, a := range alerts {
		if a.Side == SideCPU {
			cpuAlarm = true
		}
	}
	if !cpuAlarm {
		t.Fatalf("module swap raised no CPU-side alarm: %v", alerts)
	}
	// Restoring the genuine module recovers the link (§III reaction:
	// "until the newly collected fingerprint matches ... again").
	swap.Remove(l.Line)
	if alerts := mustMonitor(t, l); len(alerts) != 0 {
		t.Errorf("restored link still alarming: %v", alerts)
	}
	if !l.CPU.Gate.Authorized() {
		t.Error("CPU gate should reopen after restoration")
	}
}

func TestColdBootSwapRejectedByModule(t *testing.T) {
	l := calibrated(t, 6)
	cb := attack.NewColdBootSwap(txline.DefaultConfig(), rng.New(7))
	// The attacker moves the module onto their own machine's bus.
	l.Module.SetObservedLine(cb.BusSeenByModule())
	alerts := mustMonitor(t, l)
	var moduleAuthFail bool
	for _, a := range alerts {
		if a.Side == SideModule && a.Kind == AlertAuthFailure {
			moduleAuthFail = true
			if a.Score > 0.5 {
				t.Errorf("attacker bus scored %v; should be far from genuine", a.Score)
			}
		}
	}
	if !moduleAuthFail {
		t.Fatalf("cold boot swap not rejected: %v", alerts)
	}
	if l.Module.Gate.Authorized() {
		t.Error("module gate must close on an unrecognized bus")
	}
}

func TestWireTapRaisesTamperAlert(t *testing.T) {
	l := calibrated(t, 8)
	tap := attack.DefaultWireTap(0.10)
	tap.Apply(l.Line)
	alerts := mustMonitor(t, l)
	var tamper *Alert
	for i := range alerts {
		if alerts[i].Kind == AlertTamper {
			tamper = &alerts[i]
			break
		}
	}
	// A severe tap may instead break authentication outright; either alarm
	// is a successful detection, but at the default tap severity the link
	// still authenticates and the tamper path must fire.
	if tamper == nil {
		t.Fatalf("wire tap raised no tamper alert: %v", alerts)
	}
	if tamper.Position < 0.08 || tamper.Position > 0.12 {
		t.Errorf("tap localized at %v m, want ~0.10 m", tamper.Position)
	}
}

func TestMagneticProbeDetectedAndLocalized(t *testing.T) {
	l := calibrated(t, 9)
	probe := attack.DefaultMagneticProbe(0.18)
	probe.Apply(l.Line)
	alerts := mustMonitor(t, l)
	var tamper *Alert
	for i := range alerts {
		if alerts[i].Kind == AlertTamper {
			tamper = &alerts[i]
			break
		}
	}
	if tamper == nil {
		t.Fatalf("magnetic probe undetected: %v", alerts)
	}
	if tamper.Position < 0.16 || tamper.Position > 0.20 {
		t.Errorf("probe localized at %v m, want ~0.18 m", tamper.Position)
	}
	// Non-contact probe removal restores the clean state.
	probe.Remove(l.Line)
	if alerts := mustMonitor(t, l); len(alerts) != 0 {
		t.Errorf("alerts after probe removal: %v", alerts)
	}
}

func TestAlertAccumulation(t *testing.T) {
	l := calibrated(t, 10)
	attack.DefaultMagneticProbe(0.1).Apply(l.Line)
	mustMonitorN(t, l, 3)
	if len(l.Alerts) < 3 {
		t.Errorf("accumulated %d alerts over 3 tampered rounds", len(l.Alerts))
	}
}

func TestMeasurementDurationWithinPaperEnvelope(t *testing.T) {
	l := newLink(t, 11)
	if d := l.MeasurementDuration(); d > 60e-6 {
		t.Errorf("monitoring round takes %v s, paper envelope is ~50 µs", d)
	}
}

func TestStringers(t *testing.T) {
	if SideCPU.String() != "cpu" || SideModule.String() != "module" || Side(9).String() == "" {
		t.Error("Side names")
	}
	if AlertAuthFailure.String() != "auth-failure" || AlertTamper.String() != "tamper" ||
		AlertKind(9).String() == "" {
		t.Error("AlertKind names")
	}
	a := Alert{Side: SideCPU, Kind: AlertAuthFailure, Score: 0.5}
	if a.String() == "" {
		t.Error("alert format")
	}
	b := Alert{Side: SideModule, Kind: AlertTamper, PeakError: 1e-6, Position: 0.1}
	if b.String() == "" {
		t.Error("tamper alert format")
	}
}

func TestNewLinkRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ITDR.TrialsPerBin = 0
	if _, err := NewLink("x", cfg, txline.DefaultConfig(), rng.New(1)); err == nil {
		t.Error("expected error for invalid iTDR config")
	}
}

func TestLongRunNoFalseAlarms(t *testing.T) {
	// Soak: the auto-calibrated tamper threshold must survive hundreds of
	// clean monitoring rounds without a false alarm — the extreme-value
	// statistics of the noise floor, not just its mean, are what the 3x
	// margin has to cover.
	if testing.Short() {
		t.Skip("soak test")
	}
	l := calibrated(t, 77)
	alerts := mustMonitorN(t, l, 300)
	if len(alerts) != 0 {
		t.Errorf("%d false alarms over 300 clean rounds: %v", len(alerts), alerts[:min(3, len(alerts))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
