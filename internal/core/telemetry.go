package core

// Telemetry wiring for the protocol engine. A link emits through the narrow
// telemetry.Sink interface: one EventRound per endpoint per monitoring round
// (with the confirmed verdict), plus alerts, gate transitions, health
// transitions, fault suspicions, re-enrollments, calibration, and protocol
// errors. The endpoints' instruments share the link's sink, so measurement
// and fault-injection events carry the same link/side labels.
//
// Determinism: event content never includes wall-clock state, and the
// parallel fan-out layers (MonitorAll, MultiLink rounds) buffer each link's
// events in a private telemetry.Recorder during the concurrent section,
// draining the recorders in slice order afterwards. Two runs of the same
// monitoring sequence therefore publish byte-identical event sequences into
// a shared sink at any Parallelism.

import (
	"divot/internal/pool"
	"divot/internal/telemetry"
)

// SetSink attaches (or, with nil, detaches) a telemetry sink to the link and
// both endpoint instruments.
func (l *Link) SetSink(s telemetry.Sink) {
	l.sink = s
	l.CPU.refl.SetSink(s, l.ID, SideCPU.String())
	l.Module.refl.SetSink(s, l.ID, SideModule.String())
}

// Sink returns the currently attached telemetry sink (nil when none).
func (l *Link) Sink() telemetry.Sink { return l.sink }

// Rounds returns how many monitoring rounds the link has run since creation.
func (l *Link) Rounds() uint64 { return l.rounds }

// emit publishes an event when a sink is attached.
func (l *Link) emit(ev telemetry.Event) {
	if l.sink != nil {
		l.sink.Emit(ev)
	}
}

// swapRecorders redirects every instrumented link in links to a private
// recorder, returning the recorders and the displaced sinks. Links without a
// sink are skipped (nil entries). Call restoreAndDrain after the concurrent
// section.
func swapRecorders(links []*Link) ([]*telemetry.Recorder, []telemetry.Sink) {
	recs := make([]*telemetry.Recorder, len(links))
	orig := make([]telemetry.Sink, len(links))
	for i, l := range links {
		if l.sink != nil {
			orig[i] = l.sink
			recs[i] = &telemetry.Recorder{}
			l.SetSink(recs[i])
		}
	}
	return recs, orig
}

// restoreAndDrain undoes swapRecorders: each link gets its original sink
// back and its buffered events are forwarded in slice order.
func restoreAndDrain(links []*Link, recs []*telemetry.Recorder, orig []telemetry.Sink) {
	for i, l := range links {
		if recs[i] != nil {
			l.SetSink(orig[i])
			recs[i].DrainTo(orig[i])
		}
	}
}

// SetSink attaches (or, with nil, detaches) a telemetry sink to the bus and
// every wire. Bus-level events (fused rounds, fused alerts, fused gate
// transitions) are labelled with the bus id; wire-level instrument events keep
// their per-wire ids ("bus/w0", ...).
func (m *MultiLink) SetSink(s telemetry.Sink) {
	m.sink = s
	for _, l := range m.Wires {
		l.SetSink(s)
	}
}

// Sink returns the currently attached telemetry sink (nil when none).
func (m *MultiLink) Sink() telemetry.Sink { return m.sink }

// Rounds returns how many fused monitoring rounds the bus has run.
func (m *MultiLink) Rounds() uint64 { return m.rounds }

// emit publishes a bus-level event when a sink is attached.
func (m *MultiLink) emit(ev telemetry.Event) {
	if m.sink != nil {
		m.sink.Emit(ev)
	}
}

// maybeSwapRecorders redirects the wires to private recorders when the coming
// fan-out will actually run concurrently; it returns nils otherwise.
func (m *MultiLink) maybeSwapRecorders() ([]*telemetry.Recorder, []telemetry.Sink) {
	if pool.Workers(m.cfg.Parallelism) <= 1 || len(m.Wires) <= 1 {
		return nil, nil
	}
	return swapRecorders(m.Wires)
}

// maybeDrainRecorders undoes maybeSwapRecorders after the fan-out barrier.
func (m *MultiLink) maybeDrainRecorders(recs []*telemetry.Recorder, orig []telemetry.Sink) {
	if recs != nil {
		restoreAndDrain(m.Wires, recs, orig)
	}
}

// gateSet drives an endpoint gate and emits a transition event when the
// state actually changes.
func (l *Link) gateSet(e *Endpoint, open bool) {
	was := e.Gate.Authorized()
	e.Gate.Set(open)
	if was != open {
		l.emit(telemetry.Event{
			Kind: telemetry.EventGate,
			Link: l.ID, Side: e.Side.String(),
			Round: l.rounds,
			From:  gateName(was), To: gateName(open),
		})
	}
}

func gateName(open bool) string {
	if open {
		return "open"
	}
	return "closed"
}

// emitHealthTransition publishes a health event when the endpoint's state
// moved since the last time it was observed.
func (l *Link) emitHealthTransition(e *Endpoint) {
	state := e.health(l.cfg.Robust).State
	if state == e.lastHealth {
		return
	}
	l.emit(telemetry.Event{
		Kind: telemetry.EventHealth,
		Link: l.ID, Side: e.Side.String(),
		Round: l.rounds,
		From:  e.lastHealth.String(), To: state.String(),
	})
	e.lastHealth = state
}
