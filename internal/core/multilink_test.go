package core

import (
	"errors"
	"testing"

	"divot/internal/attack"
	"divot/internal/rng"
	"divot/internal/txline"
)

func newMulti(t *testing.T, seed uint64, wires int) *MultiLink {
	t.Helper()
	m, err := NewMultiLink("bus", DefaultConfig(), txline.DefaultConfig(), wires, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiLinkLifecycle(t *testing.T) {
	m := newMulti(t, 50, 4)
	if m.CPUGate.Authorized() || m.ModuleGate.Authorized() {
		t.Error("fused gates must start closed")
	}
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if !m.Calibrated() || !m.CPUGate.Authorized() || !m.ModuleGate.Authorized() {
		t.Error("calibration should open the fused gates")
	}
	alerts, err := m.MonitorOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Errorf("clean bus alerted: %v", alerts)
	}
	for _, h := range m.Health() {
		if h.State() != HealthOK {
			t.Errorf("clean wire unhealthy: %v", h)
		}
	}
}

func TestMultiLinkRejectsInvalidWireCount(t *testing.T) {
	if _, err := NewMultiLink("x", DefaultConfig(), txline.DefaultConfig(), 0, rng.New(1)); err == nil {
		t.Error("expected error for zero wires")
	}
}

func TestMultiLinkMonitorBeforeCalibrationErrors(t *testing.T) {
	m := newMulti(t, 51, 2)
	if _, err := m.MonitorOnce(); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("monitoring before calibration: err = %v, want ErrNotCalibrated", err)
	}
}

func TestMultiLinkOneCompromisedWireLocksBus(t *testing.T) {
	m := newMulti(t, 52, 4)
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	// Reroute one wire through an attacker interposer: that wire's CPU-side
	// view changes wholesale.
	cb := attack.NewColdBootSwap(txline.DefaultConfig(), rng.New(53))
	m.Wires[2].CPU.SetObservedLine(cb.BusSeenByModule())
	alerts, err := m.MonitorOnce()
	if err != nil {
		t.Fatal(err)
	}
	var fusedFail *Alert
	for i := range alerts {
		if alerts[i].Kind == AlertAuthFailure && alerts[i].Side == SideCPU {
			fusedFail = &alerts[i]
		}
	}
	if fusedFail == nil {
		t.Fatalf("compromised wire did not fail the fused decision: %v", alerts)
	}
	if fusedFail.Wire != 2 {
		t.Errorf("worst wire reported as %d, want 2", fusedFail.Wire)
	}
	if m.CPUGate.Authorized() {
		t.Error("fused CPU gate should close")
	}
	// The module side saw nothing unusual.
	if !m.ModuleGate.Authorized() {
		t.Error("module gate should stay open; only the CPU view changed")
	}
}

func TestMultiLinkTamperAlertCarriesWireIndex(t *testing.T) {
	m := newMulti(t, 54, 3)
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	probe := attack.DefaultMagneticProbe(0.14)
	probe.Apply(m.Wires[1].Line)
	alerts, err := m.MonitorOnce()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, a := range alerts {
		if a.Kind == AlertTamper && a.Wire == 1 {
			found = true
			if a.Position < 0.12 || a.Position > 0.16 {
				t.Errorf("probe localized at %v m on wire 1", a.Position)
			}
		}
	}
	if !found {
		t.Fatalf("no tamper alert for wire 1: %v", alerts)
	}
	// A probe on one wire does not close the fused gate (the bus still
	// authenticates); it is an alarm for the platform to escalate.
	if !m.CPUGate.Authorized() {
		t.Error("probing alone should not close the fused gate")
	}
}
