package core

import (
	"bytes"
	"strings"
	"testing"

	"divot/internal/rng"
	"divot/internal/txline"
)

func TestExportBeforeCalibrationFails(t *testing.T) {
	l := newLink(t, 20)
	var buf bytes.Buffer
	if err := l.CPU.ExportEnrollment(&buf); err == nil {
		t.Error("expected error before calibration")
	}
}

func TestCalibrationSurvivesPowerCycle(t *testing.T) {
	// Calibrate once (manufacturing time), export both EPROM images,
	// "power cycle" into a fresh engine over the same physical line, and
	// restore — monitoring must work without re-pairing.
	first := newLink(t, 21)
	if err := first.Calibrate(); err != nil {
		t.Fatal(err)
	}
	var cpuROM, modROM bytes.Buffer
	if err := first.CPU.ExportEnrollment(&cpuROM); err != nil {
		t.Fatal(err)
	}
	if err := first.Module.ExportEnrollment(&modROM); err != nil {
		t.Fatal(err)
	}

	// Same physical line, new engine instances (fresh noise streams).
	second, err := NewLinkOver("bus0", DefaultConfig(), first.Line, rng.New(9999))
	if err != nil {
		t.Fatal(err)
	}
	if err := second.RestoreCalibration(&cpuROM, &modROM); err != nil {
		t.Fatal(err)
	}
	if !second.Calibrated() {
		t.Fatal("link not calibrated after restore")
	}
	if alerts := mustMonitorN(t, second, 3); len(alerts) != 0 {
		t.Errorf("restored link alarms on its own bus: %v", alerts)
	}

	// And it still rejects a different bus.
	attacker := txline.New("attacker", txline.DefaultConfig(), rng.New(31337))
	second.Module.SetObservedLine(attacker)
	alerts := mustMonitor(t, second)
	var rejected bool
	for _, a := range alerts {
		if a.Side == SideModule && a.Kind == AlertAuthFailure {
			rejected = true
		}
	}
	if !rejected {
		t.Error("restored link accepted a foreign bus")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	l := newLink(t, 22)
	if err := l.CPU.ImportEnrollment(strings.NewReader("junk")); err == nil {
		t.Error("expected import error")
	}
	if err := l.RestoreCalibration(strings.NewReader("junk"), strings.NewReader("junk")); err == nil {
		t.Error("expected restore error")
	}
}

func TestEnrollmentIntegrityMatters(t *testing.T) {
	// §III argues the fingerprint store needs no *confidentiality* — an IIP
	// is useless off its own line. It still needs *write protection*: an
	// attacker who can rewrite the module's EPROM with the fingerprint of
	// their own bus makes the module accept that bus. This test documents
	// the threat-model boundary.
	victim := newLink(t, 23)
	if err := victim.Calibrate(); err != nil {
		t.Fatal(err)
	}
	// The attacker builds their own machine and enrolls its bus fingerprint.
	attackerStream := rng.New(31415)
	attackerLine := txline.New("attacker-bus", txline.DefaultConfig(), attackerStream)
	attacker, err := NewLinkOver("attacker", DefaultConfig(), attackerLine, attackerStream.Child("engine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := attacker.Calibrate(); err != nil {
		t.Fatal(err)
	}
	var forged bytes.Buffer
	if err := attacker.Module.ExportEnrollment(&forged); err != nil {
		t.Fatal(err)
	}

	// With EPROM write access, the attacker overwrites the victim module's
	// enrollment and moves the module onto their bus: the module now
	// authenticates the attacker's machine.
	if err := victim.Module.ImportEnrollment(&forged); err != nil {
		t.Fatal(err)
	}
	victim.Module.SetObservedLine(attackerLine)
	alerts := mustMonitor(t, victim)
	for _, a := range alerts {
		if a.Side == SideModule && a.Kind == AlertAuthFailure {
			t.Fatalf("rewritten enrollment should (regrettably) authenticate: %v", alerts)
		}
	}
	// The defense is therefore write-once/authenticated EPROM — outside
	// DIVOT's own mechanism, as the paper's future-work reactions are.
}
