package core

import "fmt"

// HealthState summarizes an endpoint's (or link's) instrument and protocol
// condition. States are ordered by severity; a link reports the worse of its
// two endpoints.
type HealthState int

const (
	// HealthOK: authenticating normally at full resolution.
	HealthOK HealthState = iota
	// HealthSuspect: the latest round's failure did not reproduce under
	// confirmation — a transient fault was absorbed.
	HealthSuspect
	// HealthDegraded: dead ETS bins are masked; authentication continues at
	// reduced resolution.
	HealthDegraded
	// HealthFailed: the endpoint no longer authenticates (confirmed failure)
	// or has lost too much resolution to decide.
	HealthFailed
)

// String names the state.
func (s HealthState) String() string {
	switch s {
	case HealthOK:
		return "ok"
	case HealthSuspect:
		return "suspect"
	case HealthDegraded:
		return "degraded"
	case HealthFailed:
		return "failed"
	}
	return fmt.Sprintf("HealthState(%d)", int(s))
}

// EndpointHealth is one endpoint's condition snapshot.
type EndpointHealth struct {
	Side  Side
	State HealthState
	// MaskedBins is the persistent dead-bin count; MaskedFraction its share
	// of all ETS bins.
	MaskedBins     int
	MaskedFraction float64
	// DegradedResolution reports that matching runs over a reduced bin set.
	DegradedResolution bool
	// SuspectRounds counts rounds whose failures were absorbed as transient
	// by confirmation; LastSuspect marks the most recent round as one.
	SuspectRounds int
	LastSuspect   bool
	// Failures counts confirmed auth-failure rounds.
	Failures int
	// Reenrollments counts drift-guarded fingerprint refreshes.
	Reenrollments int
	// LastScore is the most recent (confirmed) similarity.
	LastScore float64
}

// health snapshots the endpoint's condition under the given robustness
// policy.
func (e *Endpoint) health(rob Robustness) EndpointHealth {
	h := EndpointHealth{
		Side:           e.Side,
		MaskedBins:     e.mask.Count(),
		MaskedFraction: e.mask.Fraction(),
		SuspectRounds:  e.suspectRounds,
		LastSuspect:    e.lastSuspect,
		Failures:       e.failures,
		Reenrollments:  e.reenrollments,
		LastScore:      e.lastScore,
	}
	h.DegradedResolution = h.MaskedBins > 0
	scoring := e.mask.Dilate(rob.MaskGuard)
	live := e.bins - scoring.Count()
	switch {
	case !e.authenticated,
		rob.MaxMaskedFraction > 0 && h.MaskedFraction > rob.MaxMaskedFraction,
		rob.MinLiveBins > 0 && h.MaskedBins > 0 && live < rob.MinLiveBins:
		h.State = HealthFailed
	case h.DegradedResolution:
		h.State = HealthDegraded
	case e.lastSuspect:
		h.State = HealthSuspect
	default:
		h.State = HealthOK
	}
	return h
}

// LinkHealth is a link's condition: both endpoints plus the identifiers the
// facade aggregates by. The zero value reads as a fully healthy link.
type LinkHealth struct {
	ID     string
	CPU    EndpointHealth
	Module EndpointHealth
}

// State is the link's overall condition — the worse endpoint.
func (h LinkHealth) State() HealthState {
	if h.Module.State > h.CPU.State {
		return h.Module.State
	}
	return h.CPU.State
}

// Degraded reports whether either endpoint runs at reduced resolution.
func (h LinkHealth) Degraded() bool {
	return h.CPU.DegradedResolution || h.Module.DegradedResolution
}

// SuspectRound reports whether the most recent round was absorbed as a
// transient at either endpoint.
func (h LinkHealth) SuspectRound() bool {
	return h.CPU.LastSuspect || h.Module.LastSuspect
}

// String renders the link's condition.
func (h LinkHealth) String() string {
	return fmt.Sprintf("%s: %s (cpu=%s module=%s, masked %d/%d bins)",
		h.ID, h.State(), h.CPU.State, h.Module.State,
		h.CPU.MaskedBins, h.Module.MaskedBins)
}

// Health snapshots the link's condition after the most recent round.
func (l *Link) Health() LinkHealth {
	return LinkHealth{
		ID:     l.ID,
		CPU:    l.CPU.health(l.cfg.Robust),
		Module: l.Module.health(l.cfg.Robust),
	}
}
