package baseline

import "divot/internal/txline"

// DCResistance is the PCB anti-tamper monitor of Paley et al.: it drives a
// known current through the trace and measures the DC voltage drop. Milled
// or thinned copper raises the resistance detectably. Measuring DC levels
// requires the trace voltage to be stable, so the bus must be quiesced, and
// neither shunt-capacitive taps nor non-contact EM probes change DC
// resistance — the blind spots §V identifies.
type DCResistance struct {
	// ThresholdOhm is the resistance deviation that triggers detection.
	ThresholdOhm float64

	refR float64
}

// NewDCResistance returns a monitor with milliohm-class sensitivity.
func NewDCResistance() *DCResistance {
	return &DCResistance{ThresholdOhm: 0.05}
}

// Name implements Detector.
func (d *DCResistance) Name() string { return "DC resistance monitor" }

// Capability implements Detector.
func (d *DCResistance) Capability() Capability {
	return Capability{
		Concurrent:        false,
		Runtime:           true,
		Localizes:         false,
		DetectsNonContact: false,
		RelativeCost:      0.3,
	}
}

// Calibrate implements Detector.
func (d *DCResistance) Calibrate(l *txline.Line) { d.refR = seriesResistance(l) }

// Detect implements Detector.
func (d *DCResistance) Detect(l *txline.Line) bool {
	delta := seriesResistance(l) - d.refR
	if delta < 0 {
		delta = -delta
	}
	return delta > d.ThresholdOhm
}
