// Package baseline implements the countermeasures the paper compares DIVOT
// against in §V: the ring-oscillator probe attempt detector (PAD, Manich et
// al.), the DC-resistance PCB monitor (Paley et al.), the VNA-based
// impedance PUF (Zhang et al. / Wei et al.), and a conventional high-
// resolution-ADC TDR. Each detector models the physical quantity its real
// counterpart measures, so the comparison benches can show concretely which
// attacks each one catches and at what operational cost.
package baseline

import "divot/internal/txline"

// Capability describes a detector's operational envelope — the qualitative
// axes of the paper's §V comparison.
type Capability struct {
	// Concurrent: can it run while data flows on the bus?
	Concurrent bool
	// Runtime: is it deployable for continuous in-system monitoring (vs
	// offline/bench-top use)?
	Runtime bool
	// Localizes: can it place the disturbance along the line?
	Localizes bool
	// DetectsNonContact: does it see EM probes that never touch the trace?
	DetectsNonContact bool
	// RelativeCost is a rough unitless hardware/equipment cost on a scale
	// where the iTDR is 1.
	RelativeCost float64
}

// Detector is a tamper/authentication sensor under comparison.
type Detector interface {
	// Name identifies the scheme.
	Name() string
	// Capability returns the operational envelope.
	Capability() Capability
	// Calibrate records the line's clean state as the reference.
	Calibrate(l *txline.Line)
	// Detect reports whether the line's current state differs from the
	// calibrated reference by more than the scheme can tolerate.
	Detect(l *txline.Line) bool
}

// effectiveCapacitanceProxy sums the capacitive loading a capacitance sensor
// sees: shunt-capacitive perturbations (scaled by how much they depress the
// impedance) plus the termination chip's input capacitance (proxied by its
// impedance deviation).
func effectiveCapacitanceProxy(l *txline.Line) float64 {
	var c float64
	for _, p := range l.Perturbations() {
		if p.Kind == txline.KindCapacitive || (p.Kind == txline.KindGeneric && p.DeltaZ < 0) {
			c += -p.DeltaZ * p.Extent // ΔC ∝ -ΔZ over the affected length
		}
	}
	// Termination chip input capacitance: lower input impedance = larger C.
	c += (l.Config().TerminationZ - l.Termination()) * 1e-3
	return c
}

// seriesResistance sums the DC series resistance changes on the line.
func seriesResistance(l *txline.Line) float64 {
	var r float64
	for _, p := range l.Perturbations() {
		if p.Kind == txline.KindResistive {
			// The impedance rise of milled copper comes with a series
			// resistance increase of the same order, scaled per length.
			r += p.DeltaZ * p.Extent / 2e-3 * 0.25
		}
	}
	return r
}
