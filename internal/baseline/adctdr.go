package baseline

import (
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// ADCTDR is a conventional integrated TDR built around a real-time
// high-resolution ADC instead of DIVOT's APC comparator. It matches the
// iTDR's detection physics, but sampling the reflection in real time at
// multi-GSa/s with 8+ bits costs orders of magnitude more silicon and
// power than a comparator plus counters (§II-A's infeasibility argument),
// and it needs a dedicated probe generator, so data transfer pauses during
// measurements.
type ADCTDR struct {
	// SampleRateHz is the ADC's real-time rate.
	SampleRateHz float64
	// Bits is the ADC resolution.
	Bits int
	// NoiseSigma is the front-end noise.
	NoiseSigma float64
	// SimilarityThreshold flags a mismatch.
	SimilarityThreshold float64
	// Averages is the number of captures averaged per acquisition.
	// Scope-class TDRs always average repeated sweeps; 8 pulls the random
	// front-end noise under the quantization floor so the 0.98 threshold
	// discriminates on line structure, not capture luck.
	Averages int

	probe txline.Probe
	noise *rng.Stream
	ref   *signal.Waveform
}

// NewADCTDR returns a 40 GSa/s, 8-bit TDR averaging 8 captures per sweep.
func NewADCTDR(stream *rng.Stream) *ADCTDR {
	return &ADCTDR{
		SampleRateHz:        40e9,
		Bits:                8,
		NoiseSigma:          0.5e-3,
		SimilarityThreshold: 0.98,
		Averages:            8,
		probe:               txline.DefaultProbe(),
		noise:               stream.Child("adc-noise"),
	}
}

// Name implements Detector.
func (a *ADCTDR) Name() string { return "conventional ADC TDR" }

// Capability implements Detector.
func (a *ADCTDR) Capability() Capability {
	return Capability{
		Concurrent:        false,
		Runtime:           true,
		Localizes:         true,
		DetectsNonContact: true,
		RelativeCost:      60, // multi-GSa/s ADC + S/H + memory vs comparator + counters
	}
}

// acquire digitizes one averaged acquisition: each capture is sampled,
// noised and quantized independently, then the post-ADC captures are
// averaged — how a real sampling scope accumulates sweeps.
func (a *ADCTDR) acquire(l *txline.Line) *signal.Waveform {
	n := int(1.2 * l.RoundTripTime() * a.SampleRateHz)
	avg := a.Averages
	if avg < 1 {
		avg = 1
	}
	fullScale := 0.05 // ±50 mV input range
	lsb := 2 * fullScale / float64(int(1)<<a.Bits)
	var acc *signal.Waveform
	for k := 0; k < avg; k++ {
		w := l.Reflect(a.probe, 0, 1, a.SampleRateHz, n)
		for i, v := range w.Samples {
			v += a.noise.Gaussian(0, a.NoiseSigma)
			// Quantize to the ADC grid, clipping at full scale.
			if v > fullScale {
				v = fullScale
			}
			if v < -fullScale {
				v = -fullScale
			}
			q := float64(int(v/lsb+0.5*sign(v))) * lsb
			w.Samples[i] = q
		}
		if acc == nil {
			acc = w
		} else {
			signal.AddInPlace(acc, w)
		}
	}
	return signal.Scale(acc, 1/float64(avg))
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// Calibrate implements Detector.
func (a *ADCTDR) Calibrate(l *txline.Line) { a.ref = a.acquire(l) }

// Detect implements Detector.
func (a *ADCTDR) Detect(l *txline.Line) bool {
	cur := a.acquire(l)
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(cur), signal.RemoveMean(a.ref))
	return sim < a.SimilarityThreshold
}

// GateCountEstimate returns a rough equivalent-gate cost of the ADC front
// end, for the resource-comparison bench: flash/pipeline converters at this
// speed run to hundreds of thousands of gates, against the iTDR's ~200
// registers+LUTs.
func (a *ADCTDR) GateCountEstimate() int {
	// ~2^Bits comparator slices plus encode/correction logic, times a
	// pipeline factor for the multi-GSa/s interleaving.
	perSlice := 150
	interleave := int(a.SampleRateHz / 5e9)
	if interleave < 1 {
		interleave = 1
	}
	return (int(1) << a.Bits) * perSlice * interleave
}
