package baseline

import "divot/internal/txline"

// PAD is the probe attempt detector of Manich et al.: a ring oscillator
// whose frequency depends on the capacitive load of the monitored wire. A
// contact probe's tip capacitance slows the oscillator measurably. The PAD
// shares the wire's driver, so it has a decode mode and a surveillance mode
// and cannot do both at once — the concurrency limitation §V calls out.
type PAD struct {
	// BaseFreqHz is the unloaded oscillator frequency.
	BaseFreqHz float64
	// SensitivityHzPerC converts the capacitance proxy into a frequency
	// shift.
	SensitivityHzPerC float64
	// ThresholdHz is the frequency deviation that triggers detection.
	ThresholdHz float64

	refFreq float64
}

// NewPAD returns a PAD with representative parameters.
func NewPAD() *PAD {
	return &PAD{BaseFreqHz: 500e6, SensitivityHzPerC: 2e9, ThresholdHz: 1e4}
}

// Name implements Detector.
func (p *PAD) Name() string { return "PAD (ring oscillator)" }

// Capability implements Detector. The PAD is cheap and runtime-deployable
// but mode-switched (non-concurrent), cannot localize along the wire, and
// its capacitance sensing misses inductive (non-contact EM) probes.
func (p *PAD) Capability() Capability {
	return Capability{
		Concurrent:        false,
		Runtime:           true,
		Localizes:         false,
		DetectsNonContact: false,
		RelativeCost:      0.5,
	}
}

// frequency returns the oscillator frequency for the line's current loading.
func (p *PAD) frequency(l *txline.Line) float64 {
	return p.BaseFreqHz - p.SensitivityHzPerC*effectiveCapacitanceProxy(l)
}

// Calibrate implements Detector.
func (p *PAD) Calibrate(l *txline.Line) { p.refFreq = p.frequency(l) }

// Detect implements Detector. Detection requires switching the wire into
// surveillance mode; data transfer halts during the check.
func (p *PAD) Detect(l *txline.Line) bool {
	d := p.frequency(l) - p.refFreq
	if d < 0 {
		d = -d
	}
	return d > p.ThresholdHz
}
