package baseline

import (
	"testing"

	"divot/internal/attack"
	"divot/internal/rng"
	"divot/internal/txline"
)

func newLine(seed uint64) *txline.Line {
	return txline.New("L", txline.DefaultConfig(), rng.New(seed))
}

func allDetectors() []Detector {
	return []Detector{NewPAD(), NewDCResistance(), NewVNAPUF(), NewADCTDR(rng.New(99))}
}

func TestCleanLineNotFlagged(t *testing.T) {
	for _, d := range allDetectors() {
		l := newLine(1)
		d.Calibrate(l)
		if d.Detect(l) {
			t.Errorf("%s: clean line flagged", d.Name())
		}
	}
}

func TestPADDetectsContactProbesOnly(t *testing.T) {
	pad := NewPAD()

	l := newLine(2)
	pad.Calibrate(l)
	tap := attack.DefaultWireTap(0.1)
	tap.Apply(l)
	if !pad.Detect(l) {
		t.Error("PAD should detect a capacitive wire tap")
	}

	l2 := newLine(3)
	pad.Calibrate(l2)
	probe := attack.DefaultMagneticProbe(0.1)
	probe.Apply(l2)
	if pad.Detect(l2) {
		t.Error("PAD (capacitance sensing) should miss an inductive EM probe")
	}
}

func TestPADDetectsLoadModification(t *testing.T) {
	pad := NewPAD()
	l := newLine(4)
	pad.Calibrate(l)
	l.SetTermination(l.Termination() + 10)
	if !pad.Detect(l) {
		t.Error("PAD should notice a replaced load chip")
	}
}

func TestDCResistanceDetectsMillingOnly(t *testing.T) {
	d := NewDCResistance()

	l := newLine(5)
	d.Calibrate(l)
	mill := attack.DefaultTraceMill(0.12)
	mill.Apply(l)
	if !d.Detect(l) {
		t.Error("DC monitor should detect trace milling")
	}

	l2 := newLine(6)
	d.Calibrate(l2)
	attack.DefaultWireTap(0.1).Apply(l2)
	attack.DefaultMagneticProbe(0.2).Apply(l2)
	if d.Detect(l2) {
		t.Error("DC monitor should miss shunt taps and EM probes")
	}
}

func TestVNAPUFDetectsEverything(t *testing.T) {
	for name, mount := range map[string]func(*txline.Line){
		"wire tap":       func(l *txline.Line) { attack.DefaultWireTap(0.1).Apply(l) },
		"magnetic probe": func(l *txline.Line) { attack.DefaultMagneticProbe(0.15).Apply(l) },
		"trace mill":     func(l *txline.Line) { attack.DefaultTraceMill(0.2).Apply(l) },
		"load mod":       func(l *txline.Line) { l.SetTermination(l.Termination() + 10) },
	} {
		v := NewVNAPUF()
		l := newLine(7)
		v.Calibrate(l)
		mount(l)
		if !v.Detect(l) {
			t.Errorf("VNA PUF should detect %s", name)
		}
	}
}

func TestVNAPUFDistinguishesLines(t *testing.T) {
	v := NewVNAPUF()
	v.Calibrate(newLine(8))
	if !v.Detect(newLine(9)) {
		t.Error("VNA PUF should reject a different line")
	}
}

func TestADCTDRDetectsAttacks(t *testing.T) {
	for name, mount := range map[string]func(*txline.Line){
		"wire tap": func(l *txline.Line) { attack.DefaultWireTap(0.1).Apply(l) },
		"load mod": func(l *txline.Line) { l.SetTermination(l.Termination() + 10) },
	} {
		a := NewADCTDR(rng.New(10))
		l := newLine(11)
		a.Calibrate(l)
		mount(l)
		if !a.Detect(l) {
			t.Errorf("ADC TDR should detect %s", name)
		}
	}
}

func TestADCTDRCostDwarfsITDR(t *testing.T) {
	a := NewADCTDR(rng.New(12))
	if a.GateCountEstimate() < 100000 {
		t.Errorf("ADC gate estimate %d suspiciously small", a.GateCountEstimate())
	}
}

func TestCapabilitiesMatchPaperComparison(t *testing.T) {
	// §V's qualitative claims, encoded: only DIVOT runs concurrently with
	// traffic; among the baselines, only the offline/bench approaches see
	// non-contact probes.
	for _, d := range allDetectors() {
		c := d.Capability()
		if c.Concurrent {
			t.Errorf("%s claims concurrent operation; no §V baseline can", d.Name())
		}
	}
	if NewPAD().Capability().DetectsNonContact {
		t.Error("PAD should not detect non-contact probes")
	}
	if !NewVNAPUF().Capability().DetectsNonContact {
		t.Error("VNA should detect non-contact probes")
	}
	if NewVNAPUF().Capability().Runtime {
		t.Error("VNA is not a runtime technique")
	}
	if NewVNAPUF().Capability().RelativeCost < 100 {
		t.Error("VNA cost should dwarf integrated logic")
	}
}

func TestTraceMillPermanent(t *testing.T) {
	l := newLine(13)
	mill := attack.DefaultTraceMill(0.1)
	if mill.Name() != "trace-mill" {
		t.Errorf("Name = %q", mill.Name())
	}
	mill.Apply(l)
	mill.Remove(l)
	if len(l.Perturbations()) == 0 {
		t.Error("milled trace should stay damaged")
	}
	if mill.DeltaResistance() <= 0 {
		t.Error("milling should add resistance")
	}
}
