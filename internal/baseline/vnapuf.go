package baseline

import (
	"divot/internal/signal"
	"divot/internal/txline"
)

// VNAPUF is the impedance-analyzer fingerprinting of Zhang et al. and the
// VNA-based IIP extraction of Wei et al.: a bench-top vector network
// analyzer sweeps the line and records a high-fidelity impedance profile.
// Detection quality is excellent — it reads the same physics DIVOT does,
// with lab-grade SNR — but the instrument is bulky and the line must be
// disconnected from its system, so it protects the supply chain, not
// runtime operation.
type VNAPUF struct {
	// SimilarityThreshold is the profile similarity below which the line
	// is flagged.
	SimilarityThreshold float64

	probe txline.Probe
	ref   *signal.Waveform
}

// NewVNAPUF returns an analyzer-grade fingerprint checker.
func NewVNAPUF() *VNAPUF {
	p := txline.DefaultProbe()
	p.RiseTime = 30e-12 // lab instrument: much faster probe edge
	return &VNAPUF{SimilarityThreshold: 0.999, probe: p}
}

// Name implements Detector.
func (v *VNAPUF) Name() string { return "VNA impedance PUF" }

// Capability implements Detector.
func (v *VNAPUF) Capability() Capability {
	return Capability{
		Concurrent:        false,
		Runtime:           false,
		Localizes:         true,
		DetectsNonContact: true,
		RelativeCost:      500, // bench instrument vs integrated logic
	}
}

// sweep measures the noise-free reflection profile.
func (v *VNAPUF) sweep(l *txline.Line) *signal.Waveform {
	const rate = 200e9
	n := int(1.2 * l.RoundTripTime() * rate)
	return l.Reflect(v.probe, 0, 1, rate, n)
}

// Calibrate implements Detector.
func (v *VNAPUF) Calibrate(l *txline.Line) { v.ref = v.sweep(l) }

// Detect implements Detector.
func (v *VNAPUF) Detect(l *txline.Line) bool {
	cur := v.sweep(l)
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(cur), signal.RemoveMean(v.ref))
	return sim < v.SimilarityThreshold
}
