package memctl

import "fmt"

// Timing holds the DRAM timing parameters in controller clock cycles,
// following the standard DDR nomenclature.
type Timing struct {
	// TRCD: row-to-column delay (ACTIVATE to READ/WRITE).
	TRCD int
	// TRP: row precharge time.
	TRP int
	// TCAS: column access latency (READ to data).
	TCAS int
	// TWR: write recovery before precharge.
	TWR int
	// TRAS: minimum row open time.
	TRAS int
	// TRFC: refresh cycle time (bank unavailable).
	TRFC int
	// RefreshInterval: cycles between refresh commands (tREFI).
	RefreshInterval int
	// BurstCycles: data-burst duration for one column access.
	BurstCycles int
}

// DefaultTiming returns DDR3-1600-like parameters at an 800 MHz controller
// clock.
func DefaultTiming() Timing {
	return Timing{
		TRCD:            11,
		TRP:             11,
		TCAS:            11,
		TWR:             12,
		TRAS:            28,
		TRFC:            208,
		RefreshInterval: 6240,
		BurstCycles:     4,
	}
}

// Validate reports nonsensical parameters.
func (t Timing) Validate() error {
	for name, v := range map[string]int{
		"tRCD": t.TRCD, "tRP": t.TRP, "tCAS": t.TCAS, "tWR": t.TWR,
		"tRAS": t.TRAS, "tRFC": t.TRFC, "tREFI": t.RefreshInterval,
		"burst": t.BurstCycles,
	} {
		if v <= 0 {
			return fmt.Errorf("memctl: %s = %d must be positive", name, v)
		}
	}
	if t.RefreshInterval <= t.TRFC {
		return fmt.Errorf("memctl: tREFI %d must exceed tRFC %d",
			t.RefreshInterval, t.TRFC)
	}
	return nil
}

// Geometry describes the DRAM organization.
type Geometry struct {
	Banks, Rows, Cols int
	// BurstBytes is the payload size of one column access.
	BurstBytes int
	// ECC enables (72,64) SECDED protection: every 8-byte word carries
	// check bits, single-bit upsets are corrected on read, double-bit
	// upsets are reported uncorrectable. BurstBytes must be a multiple of
	// 8 when set.
	ECC bool
}

// DefaultGeometry returns an 8-bank, 4096-row, 1024-column device with
// 64-byte bursts (sized for simulation).
func DefaultGeometry() Geometry {
	return Geometry{Banks: 8, Rows: 4096, Cols: 1024, BurstBytes: 64}
}

// Validate reports nonsensical geometry.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.Rows <= 0 || g.Cols <= 0 || g.BurstBytes <= 0 {
		return fmt.Errorf("memctl: invalid geometry %+v", g)
	}
	if g.ECC && g.BurstBytes%8 != 0 {
		return fmt.Errorf("memctl: ECC needs 8-byte-aligned bursts, got %d", g.BurstBytes)
	}
	return nil
}

// Contains reports whether the address falls inside the geometry.
func (g Geometry) Contains(a Address) bool {
	return a.Bank >= 0 && a.Bank < g.Banks &&
		a.Row >= 0 && a.Row < g.Rows &&
		a.Col >= 0 && a.Col < g.Cols
}
