package memctl

import (
	"bytes"
	"testing"
)

func testDevice(t *testing.T, gate Gate) *Device {
	t.Helper()
	d, err := NewDevice(DefaultGeometry(), gate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceReadWriteRoundTrip(t *testing.T) {
	d := testDevice(t, nil)
	addr := Address{Bank: 2, Row: 100, Col: 5}
	d.Activate(2, 100)
	payload := bytes.Repeat([]byte{0xAB}, d.Geometry().BurstBytes)
	if _, err := d.ColumnAccess(OpWrite, addr, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.ColumnAccess(OpRead, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("read data differs from written data")
	}
}

func TestDeviceUntouchedReadsZero(t *testing.T) {
	d := testDevice(t, nil)
	d.Activate(0, 7)
	got, err := d.ColumnAccess(OpRead, Address{Bank: 0, Row: 7, Col: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched row should read zero")
		}
	}
}

func TestDeviceActivatePrechargeProtocol(t *testing.T) {
	d := testDevice(t, nil)
	d.Activate(1, 10)
	if d.OpenRow(1) != 10 {
		t.Errorf("OpenRow = %d", d.OpenRow(1))
	}
	d.Precharge(1)
	if d.OpenRow(1) != -1 {
		t.Errorf("OpenRow after precharge = %d", d.OpenRow(1))
	}
	d.Activate(1, 11) // legal again after precharge
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double ACTIVATE")
		}
	}()
	d.Activate(1, 12)
}

func TestDeviceColumnAccessClosedRowPanics(t *testing.T) {
	d := testDevice(t, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on column access to closed row")
		}
	}()
	d.ColumnAccess(OpRead, Address{Bank: 0, Row: 5, Col: 0}, nil)
}

func TestDeviceGateBlocksAccess(t *testing.T) {
	gate := NewStaticGate(false)
	d := testDevice(t, gate)
	d.Activate(0, 1)
	if _, err := d.ColumnAccess(OpRead, Address{Bank: 0, Row: 1, Col: 0}, nil); err == nil {
		t.Fatal("unauthorized access should be rejected")
	}
	if d.BlockedAccesses != 1 || d.ColumnAccesses != 0 {
		t.Errorf("counters: blocked %d, granted %d", d.BlockedAccesses, d.ColumnAccesses)
	}
	gate.Set(true)
	if _, err := d.ColumnAccess(OpRead, Address{Bank: 0, Row: 1, Col: 0}, nil); err != nil {
		t.Fatalf("authorized access failed: %v", err)
	}
	if d.ColumnAccesses != 1 {
		t.Errorf("granted count = %d", d.ColumnAccesses)
	}
}

func TestDeviceRejectsBadAddress(t *testing.T) {
	d := testDevice(t, nil)
	if _, err := d.ColumnAccess(OpRead, Address{Bank: 99, Row: 0, Col: 0}, nil); err == nil {
		t.Error("expected out-of-geometry error")
	}
}

func TestDeviceRejectsBadBurst(t *testing.T) {
	d := testDevice(t, nil)
	d.Activate(0, 0)
	if _, err := d.ColumnAccess(OpWrite, Address{}, []byte{1, 2, 3}); err == nil {
		t.Error("expected burst-size error")
	}
}

func TestDeviceRefreshPrechargesAll(t *testing.T) {
	d := testDevice(t, nil)
	d.Activate(0, 1)
	d.Activate(3, 9)
	d.Refresh()
	for b := 0; b < d.Geometry().Banks; b++ {
		if d.OpenRow(b) != -1 {
			t.Fatalf("bank %d open after refresh", b)
		}
	}
}

func TestDeviceWritePreservedAcrossPrecharge(t *testing.T) {
	d := testDevice(t, nil)
	addr := Address{Bank: 4, Row: 42, Col: 9}
	d.Activate(4, 42)
	payload := bytes.Repeat([]byte{0x5A}, d.Geometry().BurstBytes)
	if _, err := d.ColumnAccess(OpWrite, addr, payload); err != nil {
		t.Fatal(err)
	}
	d.Precharge(4)
	d.Activate(4, 42)
	got, err := d.ColumnAccess(OpRead, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("data lost across precharge/activate")
	}
}

func TestNewDeviceRejectsBadGeometry(t *testing.T) {
	if _, err := NewDevice(Geometry{}, nil); err == nil {
		t.Error("expected geometry error")
	}
}

func TestGateHelpers(t *testing.T) {
	var calls int
	g := GateFunc(func() bool { calls++; return true })
	if !g.Authorized() || calls != 1 {
		t.Error("GateFunc misbehaved")
	}
	sg := NewStaticGate(true)
	if !sg.Authorized() {
		t.Error("static gate should start authorized")
	}
	sg.Set(false)
	if sg.Authorized() {
		t.Error("static gate should deny after Set(false)")
	}
}

func TestStringers(t *testing.T) {
	if OpRead.String() != "READ" || OpWrite.String() != "WRITE" || Op(9).String() == "" {
		t.Error("Op names")
	}
	if StatusOK.String() != "OK" || StatusBlockedByCPU.String() != "BLOCKED(cpu)" ||
		StatusBlockedByModule.String() != "BLOCKED(module)" || Status(9).String() == "" {
		t.Error("Status names")
	}
	if (Address{1, 2, 3}).String() != "b1/r2/c3" {
		t.Error("Address format")
	}
	if ArbiterFCFS.String() != "fcfs" || ArbiterFRFCFS.String() != "fr-fcfs" ||
		ArbiterPolicy(7).String() == "" {
		t.Error("ArbiterPolicy names")
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DefaultTiming().Validate(); err != nil {
		t.Errorf("default timing invalid: %v", err)
	}
	bad := DefaultTiming()
	bad.TRCD = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero tRCD")
	}
	bad = DefaultTiming()
	bad.RefreshInterval = bad.TRFC
	if err := bad.Validate(); err == nil {
		t.Error("expected error for tREFI <= tRFC")
	}
}

func TestGeometryValidateAndContains(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Errorf("default geometry invalid: %v", err)
	}
	if err := (Geometry{Banks: 1}).Validate(); err == nil {
		t.Error("expected error")
	}
	g := DefaultGeometry()
	if !g.Contains(Address{0, 0, 0}) || g.Contains(Address{-1, 0, 0}) ||
		g.Contains(Address{0, g.Rows, 0}) {
		t.Error("Contains misbehaves")
	}
}
