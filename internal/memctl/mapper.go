package memctl

import "fmt"

// MapPolicy selects how linear physical addresses spread over the DRAM
// organization — the knob that decides whether a given access pattern turns
// into row hits, bank parallelism, or bank hammering.
type MapPolicy int

const (
	// MapRowMajor places consecutive bursts along a row, then walks banks,
	// then rows: sequential streams maximize row hits, and row-sized
	// strides rotate across banks.
	MapRowMajor MapPolicy = iota
	// MapBankInterleaved rotates consecutive bursts across banks first:
	// sequential streams exercise all banks in parallel, but row-sized
	// strides land repeatedly in one bank.
	MapBankInterleaved
)

// String names the policy.
func (p MapPolicy) String() string {
	switch p {
	case MapRowMajor:
		return "row-major"
	case MapBankInterleaved:
		return "bank-interleaved"
	}
	return fmt.Sprintf("MapPolicy(%d)", int(p))
}

// Mapper translates linear byte addresses to DRAM coordinates.
type Mapper struct {
	geom   Geometry
	policy MapPolicy
}

// NewMapper builds a mapper over the geometry.
func NewMapper(geom Geometry, policy MapPolicy) (Mapper, error) {
	if err := geom.Validate(); err != nil {
		return Mapper{}, err
	}
	return Mapper{geom: geom, policy: policy}, nil
}

// Capacity returns the addressable bytes.
func (m Mapper) Capacity() int64 {
	return int64(m.geom.Banks) * int64(m.geom.Rows) * int64(m.geom.Cols) * int64(m.geom.BurstBytes)
}

// Map translates a burst-aligned byte address.
func (m Mapper) Map(byteAddr int64) (Address, error) {
	if byteAddr < 0 || byteAddr >= m.Capacity() {
		return Address{}, fmt.Errorf("memctl: address %#x outside capacity %#x", byteAddr, m.Capacity())
	}
	if byteAddr%int64(m.geom.BurstBytes) != 0 {
		return Address{}, fmt.Errorf("memctl: address %#x not burst-aligned", byteAddr)
	}
	b := byteAddr / int64(m.geom.BurstBytes)
	switch m.policy {
	case MapBankInterleaved:
		return Address{
			Bank: int(b % int64(m.geom.Banks)),
			Col:  int(b / int64(m.geom.Banks) % int64(m.geom.Cols)),
			Row:  int(b / int64(m.geom.Banks) / int64(m.geom.Cols)),
		}, nil
	default:
		return Address{
			Col:  int(b % int64(m.geom.Cols)),
			Bank: int(b / int64(m.geom.Cols) % int64(m.geom.Banks)),
			Row:  int(b / int64(m.geom.Cols) / int64(m.geom.Banks)),
		}, nil
	}
}

// Unmap inverts Map back to the burst-aligned byte address.
func (m Mapper) Unmap(a Address) (int64, error) {
	if !m.geom.Contains(a) {
		return 0, fmt.Errorf("memctl: address %v outside geometry", a)
	}
	var b int64
	switch m.policy {
	case MapBankInterleaved:
		b = (int64(a.Row)*int64(m.geom.Cols)+int64(a.Col))*int64(m.geom.Banks) + int64(a.Bank)
	default:
		b = (int64(a.Row)*int64(m.geom.Banks)+int64(a.Bank))*int64(m.geom.Cols) + int64(a.Col)
	}
	return b * int64(m.geom.BurstBytes), nil
}
