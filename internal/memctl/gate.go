package memctl

import "sync/atomic"

// Gate is the authentication input that DIVOT wires into the memory system:
// the CPU-side controller consults one before issuing operations, and the
// module-side device consults its own before allowing any column access
// (§III: "the column address is gated by the authentication result").
type Gate interface {
	// Authorized reports the current authentication state.
	Authorized() bool
}

// GateFunc adapts a function to the Gate interface.
type GateFunc func() bool

// Authorized implements Gate.
func (f GateFunc) Authorized() bool { return f() }

// StaticGate is a settable gate, safe for concurrent use; the DIVOT engine
// flips it as monitoring results arrive.
type StaticGate struct {
	denied atomic.Bool
}

// NewStaticGate returns a gate in the given initial state.
func NewStaticGate(authorized bool) *StaticGate {
	g := &StaticGate{}
	g.Set(authorized)
	return g
}

// Set updates the authentication state.
func (g *StaticGate) Set(authorized bool) { g.denied.Store(!authorized) }

// Authorized implements Gate.
func (g *StaticGate) Authorized() bool { return !g.denied.Load() }
