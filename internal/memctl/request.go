// Package memctl models the memory system of the paper's example design
// (Fig. 6): a DDR-style controller (request queue, FR-FCFS arbiter, refresh)
// on the CPU side and an SDRAM device on the module side, with DIVOT
// authentication gates at both ends. The CPU-side gate halts memory
// operations when the bus fingerprint stops matching; the module-side gate
// blocks the column access path so unauthorized hosts can never read or
// write the array — the cold-boot defense.
package memctl

import (
	"fmt"

	"divot/internal/sim"
)

// Op is a memory operation type.
type Op int

const (
	// OpRead requests a burst read.
	OpRead Op = iota
	// OpWrite requests a burst write.
	OpWrite
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Address is a decomposed DRAM address.
type Address struct {
	Bank, Row, Col int
}

// String formats the address.
func (a Address) String() string {
	return fmt.Sprintf("b%d/r%d/c%d", a.Bank, a.Row, a.Col)
}

// Status is the terminal state of a request.
type Status int

const (
	// StatusOK means the operation completed.
	StatusOK Status = iota
	// StatusBlockedByCPU means the CPU-side DIVOT gate halted operations
	// (bus or module no longer authenticated from the processor's view).
	StatusBlockedByCPU
	// StatusBlockedByModule means the module-side gate rejected the column
	// access (host not authenticated from the memory's view).
	StatusBlockedByModule
	// StatusUncorrectable means ECC detected a multi-bit upset it could
	// not repair.
	StatusUncorrectable
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusBlockedByCPU:
		return "BLOCKED(cpu)"
	case StatusBlockedByModule:
		return "BLOCKED(module)"
	case StatusUncorrectable:
		return "ECC-UNCORRECTABLE"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Request is one memory operation in flight.
type Request struct {
	ID   uint64
	Op   Op
	Addr Address
	// Data is the burst payload for writes and the returned payload for
	// completed reads.
	Data []byte
	// Issued is when the request entered the controller queue.
	Issued sim.Time
	// Done, if non-nil, is invoked at completion (or blockage).
	Done func(Response)
}

// Response reports the outcome of a request.
type Response struct {
	ID        uint64
	Status    Status
	Data      []byte
	Completed sim.Time
	Latency   sim.Time
}
