package memctl

import (
	"testing"
	"testing/quick"

	"divot/internal/sim"
)

func newMapper(t *testing.T, p MapPolicy) Mapper {
	t.Helper()
	m, err := NewMapper(DefaultGeometry(), p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapperBijection(t *testing.T) {
	for _, p := range []MapPolicy{MapRowMajor, MapBankInterleaved} {
		m := newMapper(t, p)
		f := func(raw uint32) bool {
			burst := int64(raw) % (m.Capacity() / int64(DefaultGeometry().BurstBytes))
			addr := burst * int64(DefaultGeometry().BurstBytes)
			coords, err := m.Map(addr)
			if err != nil {
				return false
			}
			back, err := m.Unmap(coords)
			return err == nil && back == addr
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

func TestMapperValidation(t *testing.T) {
	m := newMapper(t, MapRowMajor)
	if _, err := m.Map(-64); err == nil {
		t.Error("negative address accepted")
	}
	if _, err := m.Map(m.Capacity()); err == nil {
		t.Error("out-of-capacity address accepted")
	}
	if _, err := m.Map(1); err == nil {
		t.Error("unaligned address accepted")
	}
	if _, err := m.Unmap(Address{Bank: 99}); err == nil {
		t.Error("bad coordinates accepted")
	}
	if _, err := NewMapper(Geometry{}, MapRowMajor); err == nil {
		t.Error("bad geometry accepted")
	}
	if MapRowMajor.String() != "row-major" || MapBankInterleaved.String() != "bank-interleaved" ||
		MapPolicy(9).String() == "" {
		t.Error("policy names")
	}
}

func TestMapperSequentialLocality(t *testing.T) {
	geom := DefaultGeometry()
	rm := newMapper(t, MapRowMajor)
	bi := newMapper(t, MapBankInterleaved)
	// Row-major: the first Cols bursts stay in bank 0 / row 0.
	for i := 0; i < geom.Cols; i++ {
		a, err := rm.Map(int64(i * geom.BurstBytes))
		if err != nil {
			t.Fatal(err)
		}
		if a.Bank != 0 || a.Row != 0 {
			t.Fatalf("row-major burst %d at %v", i, a)
		}
	}
	// Bank-interleaved: the first Banks bursts each land in a new bank.
	seen := map[int]bool{}
	for i := 0; i < geom.Banks; i++ {
		a, err := bi.Map(int64(i * geom.BurstBytes))
		if err != nil {
			t.Fatal(err)
		}
		if seen[a.Bank] {
			t.Fatalf("bank %d reused within the first %d bursts", a.Bank, geom.Banks)
		}
		seen[a.Bank] = true
	}
}

func TestMappingPolicyChangesPerformanceByStride(t *testing.T) {
	// Row-sized strides: row-major rotates banks (parallel activates),
	// bank-interleaved hammers one bank (serialized row conflicts).
	geom := DefaultGeometry()
	stride := int64(geom.Cols * geom.BurstBytes)
	run := func(p MapPolicy) sim.Time {
		h := newHarness(t, DefaultControllerConfig(), nil, nil)
		m, err := NewMapper(geom, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 24; i++ {
			addr, err := m.Map(i * stride)
			if err != nil {
				t.Fatal(err)
			}
			h.submit(OpRead, addr, nil)
		}
		h.sched.Run(1 << 22)
		if len(h.resps) != 24 {
			t.Fatalf("%v: completed %d/24", p, len(h.resps))
		}
		return h.sched.Now()
	}
	rowMajor := run(MapRowMajor)
	interleaved := run(MapBankInterleaved)
	if rowMajor*2 > interleaved {
		t.Errorf("row-sized strides: row-major (%v) should be far faster than bank-interleaved (%v)",
			rowMajor, interleaved)
	}
}
