package memctl

import (
	"bytes"
	"divot/internal/sim"
	"errors"
	"testing"
)

func eccGeometry() Geometry {
	g := DefaultGeometry()
	g.ECC = true
	return g
}

func TestECCGeometryValidation(t *testing.T) {
	g := eccGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("ECC geometry invalid: %v", err)
	}
	g.BurstBytes = 12
	if err := g.Validate(); err == nil {
		t.Error("expected error for unaligned ECC burst")
	}
}

func TestECCCleanRoundTrip(t *testing.T) {
	d, err := NewDevice(eccGeometry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := Address{Bank: 1, Row: 2, Col: 3}
	d.Activate(1, 2)
	payload := bytes.Repeat([]byte{0xA5, 0x3C}, d.Geometry().BurstBytes/2)
	if _, err := d.ColumnAccess(OpWrite, addr, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.ColumnAccess(OpRead, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("clean ECC read differs")
	}
	if s := d.ECCStats(); s.CorrectedWords != 0 || s.UncorrectableReads != 0 {
		t.Errorf("unexpected ECC activity: %+v", s)
	}
}

func TestECCUntouchedRowReadsCleanZeros(t *testing.T) {
	d, _ := NewDevice(eccGeometry(), nil)
	d.Activate(0, 9)
	got, err := d.ColumnAccess(OpRead, Address{Bank: 0, Row: 9, Col: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched ECC row should read zero")
		}
	}
}

func TestECCCorrectsSingleBitUpset(t *testing.T) {
	d, _ := NewDevice(eccGeometry(), nil)
	addr := Address{Bank: 0, Row: 1, Col: 2}
	d.Activate(0, 1)
	payload := bytes.Repeat([]byte{0x77}, d.Geometry().BurstBytes)
	if _, err := d.ColumnAccess(OpWrite, addr, payload); err != nil {
		t.Fatal(err)
	}
	d.InjectBitError(addr, 13, 4)
	got, err := d.ColumnAccess(OpRead, addr, nil)
	if err != nil {
		t.Fatalf("single-bit upset should be corrected: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("corrected data differs from original")
	}
	if s := d.ECCStats(); s.CorrectedWords != 1 {
		t.Errorf("CorrectedWords = %d", s.CorrectedWords)
	}
	// Scrubbing: a second read needs no correction.
	if _, err := d.ColumnAccess(OpRead, addr, nil); err != nil {
		t.Fatal(err)
	}
	if s := d.ECCStats(); s.CorrectedWords != 1 {
		t.Errorf("scrub failed: CorrectedWords = %d after re-read", s.CorrectedWords)
	}
}

func TestECCDetectsDoubleBitUpset(t *testing.T) {
	d, _ := NewDevice(eccGeometry(), nil)
	addr := Address{Bank: 0, Row: 1, Col: 0}
	d.Activate(0, 1)
	payload := bytes.Repeat([]byte{0x01}, d.Geometry().BurstBytes)
	if _, err := d.ColumnAccess(OpWrite, addr, payload); err != nil {
		t.Fatal(err)
	}
	// Two flips in the same 8-byte word.
	d.InjectBitError(addr, 0, 0)
	d.InjectBitError(addr, 3, 5)
	_, err := d.ColumnAccess(OpRead, addr, nil)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("double-bit upset error = %v, want ErrUncorrectable", err)
	}
	if s := d.ECCStats(); s.UncorrectableReads != 1 {
		t.Errorf("UncorrectableReads = %d", s.UncorrectableReads)
	}
}

func TestECCThroughController(t *testing.T) {
	h2 := newECCHarness(t, DefaultControllerConfig())
	addr := Address{Bank: 2, Row: 4, Col: 6}
	payload := bytes.Repeat([]byte{0xEE}, 64)
	h2.submit(OpWrite, addr, payload)
	h2.sched.Run(1 << 20)
	// Upset two bits in the stored word, then read through the controller.
	h2.dev.InjectBitError(addr, 8, 1)
	h2.dev.InjectBitError(addr, 9, 2)
	h2.submit(OpRead, addr, nil)
	h2.sched.Run(1 << 20)
	last := h2.resps[len(h2.resps)-1]
	if last.Status != StatusUncorrectable {
		t.Fatalf("read status %v, want ECC-UNCORRECTABLE", last.Status)
	}
	if h2.ctl.Stats.Uncorrectable != 1 {
		t.Errorf("controller Uncorrectable = %d", h2.ctl.Stats.Uncorrectable)
	}

	// A single-bit upset elsewhere is transparent.
	addr2 := Address{Bank: 2, Row: 4, Col: 7}
	h2.submit(OpWrite, addr2, payload)
	h2.sched.Run(1 << 20)
	h2.dev.InjectBitError(addr2, 0, 0)
	h2.submit(OpRead, addr2, nil)
	h2.sched.Run(1 << 20)
	last = h2.resps[len(h2.resps)-1]
	if last.Status != StatusOK || !bytes.Equal(last.Data, payload) {
		t.Fatalf("corrected read: %v", last.Status)
	}
}

// newECCHarness builds a harness over an ECC device.
func newECCHarness(t *testing.T, cfg ControllerConfig) *harness {
	t.Helper()
	h := &harness{sched: &sim.Scheduler{}}
	var err error
	h.dev, err = NewDevice(eccGeometry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h.ctl, err = NewController(h.sched, h.dev, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestInjectBitErrorValidation(t *testing.T) {
	d, _ := NewDevice(eccGeometry(), nil)
	for name, f := range map[string]func(){
		"address": func() { d.InjectBitError(Address{Bank: 99}, 0, 0) },
		"byte":    func() { d.InjectBitError(Address{}, 999, 0) },
		"bit":     func() { d.InjectBitError(Address{}, 0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNonECCDeviceIgnoresECCStats(t *testing.T) {
	d, _ := NewDevice(DefaultGeometry(), nil)
	if s := d.ECCStats(); s != (ECCStats{}) {
		t.Errorf("non-ECC device stats = %+v", s)
	}
}
