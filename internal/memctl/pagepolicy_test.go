package memctl

import (
	"testing"

	"divot/internal/sim"
)

// streaming walks columns within one row — the maximal-locality workload.
func streaming(h *harness, n int) {
	for i := 0; i < n; i++ {
		h.submit(OpRead, Address{Bank: 0, Row: 7, Col: i}, nil)
	}
	h.sched.Run(1 << 21)
}

func withPage(p PagePolicy, arbiter ArbiterPolicy) ControllerConfig {
	cfg := DefaultControllerConfig()
	cfg.Page = p
	cfg.Arbiter = arbiter
	return cfg
}

func TestClosedPageHidesPrechargeInIdleGaps(t *testing.T) {
	// On a saturated bank, tRC bounds both policies equally; closed-page's
	// win is that the precharge happens during idle gaps, so a later
	// row-conflicting access skips tRP. Submit spaced requests that
	// alternate rows and compare per-request latency.
	run := func(p PagePolicy) sim.Time {
		h := newHarness(t, withPage(p, ArbiterFCFS), nil, nil)
		const n = 16
		for i := 0; i < n; i++ {
			i := i
			h.sched.At(sim.Time(i)*2*sim.Microsecond, func() {
				h.submit(OpRead, Address{Bank: 0, Row: i % 2, Col: i}, nil)
			})
		}
		h.sched.Run(1 << 21)
		if len(h.resps) != n {
			t.Fatalf("%v: completed %d/%d", p, len(h.resps), n)
		}
		var total sim.Time
		for _, r := range h.resps[1:] { // first access is a cold activate for both
			total += r.Latency
		}
		return total
	}
	open := run(PageOpen)
	closed := run(PageClosed)
	if closed >= open {
		t.Errorf("closed-page total latency %v should beat open-page %v on spaced row ping-pong",
			closed, open)
	}
}

func TestOpenPageWinsStreaming(t *testing.T) {
	open := newHarness(t, withPage(PageOpen, ArbiterFCFS), nil, nil)
	streaming(open, 32)
	closed := newHarness(t, withPage(PageClosed, ArbiterFCFS), nil, nil)
	streaming(closed, 32)
	if open.sched.Now() >= closed.sched.Now() {
		t.Errorf("open-page (%v) should beat closed-page (%v) on streaming",
			open.sched.Now(), closed.sched.Now())
	}
	if open.ctl.Stats.RowHitRate() < 0.9 {
		t.Errorf("streaming open-page hit rate %v should be near 1", open.ctl.Stats.RowHitRate())
	}
	if closed.ctl.Stats.RowHits != 0 {
		t.Errorf("closed-page should never hit an open row, got %d", closed.ctl.Stats.RowHits)
	}
}

func TestPagePolicyString(t *testing.T) {
	if PageOpen.String() != "open-page" || PageClosed.String() != "closed-page" ||
		PagePolicy(9).String() == "" {
		t.Error("page policy names")
	}
}
