package memctl

import (
	"testing"

	"divot/internal/rng"
	"divot/internal/sim"
)

// harness wires a controller to a device and collects responses.
type harness struct {
	sched *sim.Scheduler
	dev   *Device
	ctl   *Controller
	resps []Response
}

func newHarness(t *testing.T, cfg ControllerConfig, cpuGate, modGate Gate) *harness {
	t.Helper()
	h := &harness{sched: &sim.Scheduler{}}
	var err error
	h.dev, err = NewDevice(DefaultGeometry(), modGate)
	if err != nil {
		t.Fatal(err)
	}
	h.ctl, err = NewController(h.sched, h.dev, cfg, cpuGate)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *harness) submit(op Op, addr Address, data []byte) {
	h.ctl.Submit(&Request{Op: op, Addr: addr, Data: data,
		Done: func(r Response) { h.resps = append(h.resps, r) }})
}

func TestControllerCompletesRequests(t *testing.T) {
	h := newHarness(t, DefaultControllerConfig(), nil, nil)
	for i := 0; i < 20; i++ {
		h.submit(OpRead, Address{Bank: i % 4, Row: i % 3, Col: i}, nil)
	}
	h.sched.Run(1 << 20)
	if len(h.resps) != 20 {
		t.Fatalf("completed %d/20", len(h.resps))
	}
	for _, r := range h.resps {
		if r.Status != StatusOK {
			t.Fatalf("request %d status %v", r.ID, r.Status)
		}
		if r.Latency <= 0 {
			t.Fatalf("request %d non-positive latency", r.ID)
		}
	}
	if h.ctl.Stats.Completed != 20 {
		t.Errorf("stats completed = %d", h.ctl.Stats.Completed)
	}
	if h.ctl.QueueDepth() != 0 {
		t.Errorf("queue not drained: %d", h.ctl.QueueDepth())
	}
}

func TestControllerRowHitFasterThanMiss(t *testing.T) {
	h := newHarness(t, DefaultControllerConfig(), nil, nil)
	// Same row twice: second access is a row hit.
	h.submit(OpRead, Address{Bank: 0, Row: 5, Col: 1}, nil)
	h.submit(OpRead, Address{Bank: 0, Row: 5, Col: 2}, nil)
	// Then a row conflict.
	h.submit(OpRead, Address{Bank: 0, Row: 9, Col: 1}, nil)
	h.sched.Run(1 << 20)
	if len(h.resps) != 3 {
		t.Fatalf("completed %d/3", len(h.resps))
	}
	hit := h.resps[1].Completed - h.resps[0].Completed
	conflict := h.resps[2].Completed - h.resps[1].Completed
	if hit >= conflict {
		t.Errorf("row hit service %v not faster than conflict %v", hit, conflict)
	}
	if h.ctl.Stats.RowHits != 1 || h.ctl.Stats.RowMisses != 2 {
		t.Errorf("hits/misses = %d/%d", h.ctl.Stats.RowHits, h.ctl.Stats.RowMisses)
	}
}

func TestFRFCFSBeatsFCFSOnInterleavedRows(t *testing.T) {
	// Alternating rows in one bank: FCFS ping-pongs (all conflicts);
	// FR-FCFS batches row hits.
	load := func(h *harness) {
		for i := 0; i < 32; i++ {
			h.submit(OpRead, Address{Bank: 0, Row: i % 2, Col: i}, nil)
		}
		h.sched.Run(1 << 20)
	}
	fcfsCfg := DefaultControllerConfig()
	fcfsCfg.Arbiter = ArbiterFCFS
	fcfs := newHarness(t, fcfsCfg, nil, nil)
	load(fcfs)
	frfcfs := newHarness(t, DefaultControllerConfig(), nil, nil)
	load(frfcfs)
	if len(fcfs.resps) != 32 || len(frfcfs.resps) != 32 {
		t.Fatalf("completion counts %d, %d", len(fcfs.resps), len(frfcfs.resps))
	}
	if frfcfs.ctl.Stats.RowHitRate() <= fcfs.ctl.Stats.RowHitRate() {
		t.Errorf("FR-FCFS hit rate %v should beat FCFS %v",
			frfcfs.ctl.Stats.RowHitRate(), fcfs.ctl.Stats.RowHitRate())
	}
	if frfcfs.sched.Now() >= fcfs.sched.Now() {
		t.Errorf("FR-FCFS finished at %v, FCFS at %v; expected speedup",
			frfcfs.sched.Now(), fcfs.sched.Now())
	}
}

func TestModuleGateBlocksColdBootReads(t *testing.T) {
	// The module refuses column accesses from an unauthenticated host —
	// the §III cold-boot defense.
	modGate := NewStaticGate(false)
	h := newHarness(t, DefaultControllerConfig(), nil, modGate)
	h.submit(OpRead, Address{Bank: 0, Row: 0, Col: 0}, nil)
	h.sched.Run(1 << 20)
	if len(h.resps) != 1 || h.resps[0].Status != StatusBlockedByModule {
		t.Fatalf("responses = %+v", h.resps)
	}
	if h.dev.BlockedAccesses != 1 {
		t.Errorf("device blocked count = %d", h.dev.BlockedAccesses)
	}
}

func TestCPUGateStallsUntilRecovery(t *testing.T) {
	cpuGate := NewStaticGate(false)
	h := newHarness(t, DefaultControllerConfig(), cpuGate, nil)
	h.submit(OpRead, Address{Bank: 0, Row: 0, Col: 0}, nil)
	// While unauthorized, nothing completes.
	h.sched.RunUntil(50 * sim.Microsecond)
	if len(h.resps) != 0 {
		t.Fatalf("request completed while gate closed: %+v", h.resps)
	}
	// Authentication recovers; the stalled request then completes.
	cpuGate.Set(true)
	h.sched.Run(1 << 20)
	if len(h.resps) != 1 || h.resps[0].Status != StatusOK {
		t.Fatalf("responses after recovery = %+v", h.resps)
	}
	if h.resps[0].Latency < 50*sim.Microsecond {
		t.Errorf("latency %v should include the stall", h.resps[0].Latency)
	}
}

func TestCPUGateFailFast(t *testing.T) {
	cfg := DefaultControllerConfig()
	cfg.Block = BlockFail
	cpuGate := NewStaticGate(false)
	h := newHarness(t, cfg, cpuGate, nil)
	h.submit(OpWrite, Address{Bank: 1, Row: 1, Col: 1}, make([]byte, 64))
	h.sched.Run(1 << 20)
	if len(h.resps) != 1 || h.resps[0].Status != StatusBlockedByCPU {
		t.Fatalf("responses = %+v", h.resps)
	}
	if h.ctl.Stats.BlockedCPU != 1 {
		t.Errorf("BlockedCPU = %d", h.ctl.Stats.BlockedCPU)
	}
}

func TestRefreshHappens(t *testing.T) {
	h := newHarness(t, DefaultControllerConfig(), nil, nil)
	stream := rng.New(1)
	// Traffic spread across several refresh intervals (the pipelined
	// controller drains a back-to-back burst well inside one tREFI).
	const n = 400
	tREFI := h.ctl.clock.CyclesToTime(int64(DefaultTiming().RefreshInterval))
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 3 * tREFI / n
		h.sched.At(at, func() {
			h.submit(OpRead, Address{Bank: stream.Intn(8), Row: stream.Intn(16), Col: stream.Intn(32)}, nil)
		})
	}
	h.sched.Run(1 << 22)
	if len(h.resps) != n {
		t.Fatalf("completed %d/%d", len(h.resps), n)
	}
	if h.ctl.Stats.Refreshes < 2 {
		t.Errorf("refreshes = %d over three tREFI", h.ctl.Stats.Refreshes)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	h := newHarness(t, DefaultControllerConfig(), nil, nil)
	h.submit(OpRead, Address{Bank: 0, Row: 0, Col: 0}, nil)
	h.sched.Run(1 << 20)
	readLat := h.resps[0].Latency

	h2 := newHarness(t, DefaultControllerConfig(), nil, nil)
	h2.submit(OpWrite, Address{Bank: 0, Row: 0, Col: 0}, make([]byte, 64))
	h2.sched.Run(1 << 20)
	writeLat := h2.resps[0].Latency
	if writeLat <= readLat {
		t.Errorf("write latency %v should exceed read %v (tWR)", writeLat, readLat)
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.AvgLatency() != 0 || s.RowHitRate() != 0 {
		t.Error("empty stats should be zero")
	}
	s.Completed = 2
	s.TotalLatency = 10
	if s.AvgLatency() != 5 {
		t.Errorf("AvgLatency = %v", s.AvgLatency())
	}
	s.RowHits, s.RowMisses = 3, 1
	if s.RowHitRate() != 0.75 {
		t.Errorf("RowHitRate = %v", s.RowHitRate())
	}
}

func TestNewControllerValidation(t *testing.T) {
	sched := &sim.Scheduler{}
	dev, _ := NewDevice(DefaultGeometry(), nil)
	bad := DefaultControllerConfig()
	bad.Timing.TRP = 0
	if _, err := NewController(sched, dev, bad, nil); err == nil {
		t.Error("expected timing error")
	}
	bad = DefaultControllerConfig()
	bad.ClockHz = 0
	if _, err := NewController(sched, dev, bad, nil); err == nil {
		t.Error("expected clock error")
	}
}

func TestBankParallelismOverlaps(t *testing.T) {
	// Two row misses in different banks overlap their row activity; the
	// same two misses in one bank serialize. The two-bank case must finish
	// markedly sooner.
	run := func(addr func(i int) Address) sim.Time {
		h := newHarness(t, DefaultControllerConfig(), nil, nil)
		for i := 0; i < 8; i++ {
			h.submit(OpRead, addr(i), nil)
		}
		h.sched.Run(1 << 21)
		if len(h.resps) != 8 {
			t.Fatalf("completed %d/8", len(h.resps))
		}
		return h.sched.Now()
	}
	oneBank := run(func(i int) Address { return Address{Bank: 0, Row: i, Col: 0} })
	spread := run(func(i int) Address { return Address{Bank: i % 8, Row: i, Col: 0} })
	if spread*2 > oneBank {
		t.Errorf("bank-parallel run (%v) should be far faster than single-bank (%v)", spread, oneBank)
	}
}

func TestDataBusSerializesBursts(t *testing.T) {
	// Even with perfect bank parallelism, bursts share one data bus: n
	// row hits across n banks cannot finish faster than n burst times.
	h := newHarness(t, DefaultControllerConfig(), nil, nil)
	const n = 8
	// Open all rows first.
	for i := 0; i < n; i++ {
		h.submit(OpRead, Address{Bank: i, Row: 1, Col: 0}, nil)
	}
	h.sched.Run(1 << 21)
	h.resps = nil
	start := h.sched.Now()
	for i := 0; i < n; i++ {
		h.submit(OpRead, Address{Bank: i, Row: 1, Col: 1}, nil)
	}
	h.sched.Run(1 << 21)
	if len(h.resps) != n {
		t.Fatalf("completed %d/%d", len(h.resps), n)
	}
	elapsed := h.sched.Now() - start
	minBus := h.ctl.clock.CyclesToTime(int64(n * DefaultTiming().BurstCycles))
	if elapsed < minBus {
		t.Errorf("%d bursts finished in %v, below the data-bus floor %v", n, elapsed, minBus)
	}
}
