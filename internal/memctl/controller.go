package memctl

import (
	"errors"
	"fmt"

	"divot/internal/sim"
)

// ArbiterPolicy selects how the controller picks the next request.
type ArbiterPolicy int

const (
	// ArbiterFCFS serves requests strictly in arrival order.
	ArbiterFCFS ArbiterPolicy = iota
	// ArbiterFRFCFS prefers requests that hit an already-open row
	// (first-ready, first-come-first-served) — the scheduler of the memory
	// access literature the paper cites for its controller context.
	ArbiterFRFCFS
)

// String names the policy.
func (p ArbiterPolicy) String() string {
	switch p {
	case ArbiterFCFS:
		return "fcfs"
	case ArbiterFRFCFS:
		return "fr-fcfs"
	}
	return fmt.Sprintf("ArbiterPolicy(%d)", int(p))
}

// BlockPolicy selects what the CPU-side gate does with traffic while the
// link is unauthenticated.
type BlockPolicy int

const (
	// BlockStall holds requests until authentication recovers — the
	// paper's reaction ("stopping the normal memory operation until the
	// newly collected fingerprint matches ... again").
	BlockStall BlockPolicy = iota
	// BlockFail completes requests immediately with StatusBlockedByCPU —
	// for workloads that prefer an error over an indefinite stall.
	BlockFail
)

// PagePolicy selects what happens to a row after a column access.
type PagePolicy int

const (
	// PageOpen leaves the row open, betting on locality (row hits).
	PageOpen PagePolicy = iota
	// PageClosed precharges after every access, betting against locality:
	// the next access to the bank skips the precharge penalty.
	PageClosed
)

// String names the policy.
func (p PagePolicy) String() string {
	switch p {
	case PageOpen:
		return "open-page"
	case PageClosed:
		return "closed-page"
	}
	return fmt.Sprintf("PagePolicy(%d)", int(p))
}

// Stats aggregates controller behaviour.
type Stats struct {
	Completed     int64
	BlockedCPU    int64
	BlockedModule int64
	Uncorrectable int64
	RowHits       int64
	RowMisses     int64
	Refreshes     int64
	TotalLatency  sim.Time
}

// AvgLatency returns the mean completion latency of successful requests.
func (s Stats) AvgLatency() sim.Time {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalLatency / sim.Time(s.Completed)
}

// RowHitRate returns the fraction of column accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// bankState tracks per-bank scheduling constraints.
type bankState struct {
	readyAt     sim.Time // earliest next command
	activatedAt sim.Time // last ACTIVATE, for tRAS
}

// Controller is the CPU-side memory controller of Fig. 6: request queue,
// arbiter, refresh engine, and the DIVOT gate in the command path.
type Controller struct {
	sched   *sim.Scheduler
	clock   *sim.Clock
	timing  Timing
	device  *Device
	cpuGate Gate
	arbiter ArbiterPolicy
	block   BlockPolicy
	page    PagePolicy

	queue       []*Request
	banks       []bankState
	busy        bool
	wakeAt      sim.Time // earliest pending self-wake; 0 = none
	busFreeAt   sim.Time // shared data bus: next burst may start here
	inFlight    int      // issued requests whose completion has not run
	nextRefresh sim.Time
	nextID      uint64

	// Stats accumulates scheduling outcomes.
	Stats Stats
}

// ControllerConfig bundles construction options.
type ControllerConfig struct {
	Timing  Timing
	Arbiter ArbiterPolicy
	Block   BlockPolicy
	Page    PagePolicy
	// ClockHz is the controller clock (default 800 MHz).
	ClockHz float64
}

// DefaultControllerConfig returns an FR-FCFS controller at 800 MHz with the
// stall reaction policy.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Timing:  DefaultTiming(),
		Arbiter: ArbiterFRFCFS,
		Block:   BlockStall,
		ClockHz: 800e6,
	}
}

// NewController builds a controller driving the given device. cpuGate may be
// nil for an unprotected system.
func NewController(sched *sim.Scheduler, dev *Device, cfg ControllerConfig, cpuGate Gate) (*Controller, error) {
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("memctl: non-positive controller clock %v", cfg.ClockHz)
	}
	if cpuGate == nil {
		cpuGate = GateFunc(func() bool { return true })
	}
	c := &Controller{
		sched:   sched,
		clock:   sim.NewClock(sched, cfg.ClockHz),
		timing:  cfg.Timing,
		device:  dev,
		cpuGate: cpuGate,
		arbiter: cfg.Arbiter,
		block:   cfg.Block,
		page:    cfg.Page,
		banks:   make([]bankState, dev.Geometry().Banks),
	}
	c.nextRefresh = sched.Now() + c.cycles(cfg.Timing.RefreshInterval)
	return c, nil
}

// cycles converts controller cycles to simulation time.
func (c *Controller) cycles(n int) sim.Time { return c.clock.CyclesToTime(int64(n)) }

// Submit queues a request; the Done callback (if any) fires at completion.
// It returns the assigned request ID.
func (c *Controller) Submit(r *Request) uint64 {
	c.nextID++
	r.ID = c.nextID
	r.Issued = c.sched.Now()
	c.queue = append(c.queue, r)
	c.kick()
	return r.ID
}

// QueueDepth returns the number of waiting requests.
func (c *Controller) QueueDepth() int { return len(c.queue) }

// kick starts the scheduling loop if it is idle.
func (c *Controller) kick() {
	if c.busy {
		return
	}
	c.busy = true
	c.sched.After(0, c.serviceNext)
}

// serviceNext issues every request whose bank can accept work now (banks
// operate in parallel; bursts serialize on the shared data bus), then parks
// the loop until the next bank becomes ready.
func (c *Controller) serviceNext() {
	now := c.sched.Now()
	if c.wakeAt == now {
		c.wakeAt = 0
	}

	// Refresh has priority over new issues: once due, no further requests
	// start, and the refresh itself waits for in-flight requests to drain
	// (the controller flushes before refreshing).
	if now >= c.nextRefresh {
		if c.inFlight > 0 {
			return // the draining completions will re-enter serviceNext
		}
		c.device.Refresh()
		c.Stats.Refreshes++
		done := now + c.cycles(c.timing.TRFC)
		for i := range c.banks {
			c.banks[i].readyAt = done
		}
		c.nextRefresh += c.cycles(c.timing.RefreshInterval)
		c.sched.At(done, c.serviceNext)
		return
	}

	if len(c.queue) == 0 {
		c.busy = false
		return
	}

	if !c.cpuGate.Authorized() {
		// The paper's reaction: stop memory operation until the
		// fingerprint matches again (§III). Poll on the next
		// measurement-scale interval.
		if c.block == BlockFail {
			for _, r := range c.queue {
				c.finish(r, Response{ID: r.ID, Status: StatusBlockedByCPU})
				c.Stats.BlockedCPU++
			}
			c.queue = c.queue[:0]
			c.busy = false
			return
		}
		c.sched.After(c.cycles(64), c.serviceNext)
		return
	}

	// Issue everything issuable at this instant.
	for len(c.queue) > 0 {
		idx := c.pick(now)
		if idx < 0 {
			break
		}
		r := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
		c.issue(r, now)
	}
	if len(c.queue) == 0 {
		c.busy = false
		return
	}

	// Park until the earliest relevant bank frees up (or refresh).
	wake := c.nextRefresh
	if c.arbiter == ArbiterFCFS {
		// Strict order: only the head's bank matters.
		if t := c.banks[c.queue[0].Addr.Bank].readyAt; t < wake {
			wake = t
		}
	} else {
		for _, r := range c.queue {
			if t := c.banks[r.Addr.Bank].readyAt; t < wake {
				wake = t
			}
		}
	}
	if wake <= now {
		wake = now + c.cycles(1)
	}
	if c.wakeAt == 0 || wake < c.wakeAt {
		c.wakeAt = wake
		c.sched.At(wake, c.serviceNext)
	}
}

// pick selects the queue index to issue at the current instant, or -1 when
// no request's bank is available.
func (c *Controller) pick(now sim.Time) int {
	if c.arbiter == ArbiterFRFCFS {
		// First ready (open-row hit on an available bank), oldest first.
		for i, r := range c.queue {
			b := &c.banks[r.Addr.Bank]
			if b.readyAt <= now && c.device.OpenRow(r.Addr.Bank) == r.Addr.Row {
				return i
			}
		}
		// Otherwise the oldest request whose bank is available.
		for i, r := range c.queue {
			if c.banks[r.Addr.Bank].readyAt <= now {
				return i
			}
		}
		return -1
	}
	// FCFS: strictly in order — the head issues only when its bank is free.
	if c.banks[c.queue[0].Addr.Bank].readyAt <= now {
		return 0
	}
	return -1
}

// issue walks one request through precharge/activate/column phases and
// schedules its completion. The caller guarantees the bank is available.
func (c *Controller) issue(r *Request, now sim.Time) {
	b := &c.banks[r.Addr.Bank]
	start := now

	open := c.device.OpenRow(r.Addr.Bank)
	var rowReady sim.Time
	switch {
	case open == r.Addr.Row:
		c.Stats.RowHits++
		rowReady = start
	case open == -1:
		c.Stats.RowMisses++
		c.device.Activate(r.Addr.Bank, r.Addr.Row)
		b.activatedAt = start
		rowReady = start + c.cycles(c.timing.TRCD)
	default:
		c.Stats.RowMisses++
		// Precharge may not begin before tRAS expires for the open row.
		prechargeAt := b.activatedAt + c.cycles(c.timing.TRAS)
		if prechargeAt > start {
			start = prechargeAt
		}
		c.device.Precharge(r.Addr.Bank)
		c.device.Activate(r.Addr.Bank, r.Addr.Row)
		b.activatedAt = start + c.cycles(c.timing.TRP)
		rowReady = b.activatedAt + c.cycles(c.timing.TRCD)
	}
	// The column burst needs the shared data bus; bursts from different
	// banks serialize here even though their row activity overlaps.
	burstStart := rowReady + c.cycles(c.timing.TCAS)
	if burstStart < c.busFreeAt {
		burstStart = c.busFreeAt
	}
	done := burstStart + c.cycles(c.timing.BurstCycles)
	c.busFreeAt = done
	if r.Op == OpWrite {
		done += c.cycles(c.timing.TWR)
	}
	// The bank frees strictly after the completion event at `done` has
	// run, so a same-instant scheduler wake can never issue into a bank
	// whose previous access has not yet touched the device.
	b.readyAt = done + 1
	c.inFlight++

	c.sched.At(done, func() {
		c.inFlight--
		data, accessErr := c.device.ColumnAccess(r.Op, r.Addr, r.Data)
		if c.page == PageClosed {
			// Auto-precharge: close the row and absorb tRP now so the
			// next access to this bank starts from a precharged state.
			prechargeAt := b.activatedAt + c.cycles(c.timing.TRAS)
			if prechargeAt < c.sched.Now() {
				prechargeAt = c.sched.Now()
			}
			c.device.Precharge(r.Addr.Bank)
			b.readyAt = prechargeAt + c.cycles(c.timing.TRP)
		}
		resp := Response{ID: r.ID, Completed: c.sched.Now(), Latency: c.sched.Now() - r.Issued}
		switch {
		case accessErr == nil:
			resp.Status = StatusOK
			resp.Data = data
			c.Stats.Completed++
			c.Stats.TotalLatency += resp.Latency
		case errors.Is(accessErr, ErrUncorrectable):
			resp.Status = StatusUncorrectable
			c.Stats.Uncorrectable++
		case errors.Is(accessErr, ErrUnauthorized):
			resp.Status = StatusBlockedByModule
			c.Stats.BlockedModule++
		default:
			// Anything else is a controller protocol bug, not a runtime
			// condition; surface it loudly.
			panic(fmt.Sprintf("memctl: unexpected device error: %v", accessErr))
		}
		c.finish(r, resp)
		c.serviceNext()
	})
}

// finish delivers the response.
func (c *Controller) finish(r *Request, resp Response) {
	if r.Done != nil {
		r.Done(resp)
	}
}
