package memctl

import (
	"fmt"
)

// Device is the SDRAM module: banks of rows with open-row state, the data
// array, and the module-side DIVOT gate sitting in front of the column
// access path. Rows are allocated lazily; untouched rows read as zero.
type Device struct {
	geom Geometry
	gate Gate

	openRow []int // per bank; -1 = all precharged
	storage map[int64][]byte
	ecc     *eccSidecar // non-nil when geom.ECC

	// ColumnAccesses counts granted column operations; BlockedAccesses
	// counts gate rejections — the module's tamper-evidence counters.
	ColumnAccesses  int64
	BlockedAccesses int64
}

// NewDevice builds a device with the given geometry and module-side gate.
// A nil gate means permanently authorized (an unprotected legacy module).
func NewDevice(geom Geometry, gate Gate) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if gate == nil {
		gate = GateFunc(func() bool { return true })
	}
	open := make([]int, geom.Banks)
	for i := range open {
		open[i] = -1
	}
	d := &Device{
		geom:    geom,
		gate:    gate,
		openRow: open,
		storage: make(map[int64][]byte),
	}
	if geom.ECC {
		d.ecc = newECCSidecar()
	}
	return d, nil
}

// ECCStats returns the correction counters; zero value if ECC is disabled.
func (d *Device) ECCStats() ECCStats {
	if d.ecc == nil {
		return ECCStats{}
	}
	return d.ecc.Stats
}

// Geometry returns the device organization.
func (d *Device) Geometry() Geometry { return d.geom }

// OpenRow returns the open row in the bank, or -1 if precharged.
func (d *Device) OpenRow(bank int) int { return d.openRow[bank] }

// rowKey flattens a bank/row pair for storage lookup.
func (d *Device) rowKey(bank, row int) int64 {
	return int64(bank)*int64(d.geom.Rows) + int64(row)
}

// Activate opens a row in a bank. The bank must be precharged — the
// controller is responsible for protocol legality, and violating it is a
// programming error in the controller, hence panic.
func (d *Device) Activate(bank, row int) {
	if d.openRow[bank] != -1 {
		panic(fmt.Sprintf("memctl: ACTIVATE b%d/r%d with row %d open",
			bank, row, d.openRow[bank]))
	}
	d.openRow[bank] = row
}

// Precharge closes the open row in a bank (idempotent).
func (d *Device) Precharge(bank int) { d.openRow[bank] = -1 }

// PrechargeAll closes every bank — the state after a refresh or reset.
func (d *Device) PrechargeAll() {
	for i := range d.openRow {
		d.openRow[i] = -1
	}
}

// ColumnAccess performs the burst read or write. It enforces two things:
// protocol legality (the addressed row must be open) and the DIVOT gate —
// an unauthorized access is counted and rejected without touching the array.
func (d *Device) ColumnAccess(op Op, addr Address, data []byte) ([]byte, error) {
	if !d.geom.Contains(addr) {
		return nil, fmt.Errorf("memctl: address %v outside geometry", addr)
	}
	if d.openRow[addr.Bank] != addr.Row {
		panic(fmt.Sprintf("memctl: column access %v with row %d open",
			addr, d.openRow[addr.Bank]))
	}
	if !d.gate.Authorized() {
		d.BlockedAccesses++
		return nil, fmt.Errorf("%w: %v", ErrUnauthorized, addr)
	}
	d.ColumnAccesses++
	key := d.rowKey(addr.Bank, addr.Row)
	rowBytes := d.geom.Cols * d.geom.BurstBytes
	row, ok := d.storage[key]
	if !ok {
		if op == OpRead {
			// Untouched rows read as zero; with ECC the sidecar pre-seeds
			// matching check bits, so zeros decode clean.
			return make([]byte, d.geom.BurstBytes), nil
		}
		row = make([]byte, rowBytes)
		d.storage[key] = row
	}
	off := addr.Col * d.geom.BurstBytes
	burst := row[off : off+d.geom.BurstBytes]
	if op == OpWrite {
		if len(data) != d.geom.BurstBytes {
			return nil, fmt.Errorf("memctl: write burst %d bytes, want %d",
				len(data), d.geom.BurstBytes)
		}
		copy(burst, data)
		if d.ecc != nil {
			d.ecc.writeBurst(key, rowBytes, off, burst)
		}
		return nil, nil
	}
	out := make([]byte, d.geom.BurstBytes)
	copy(out, burst)
	if d.ecc != nil {
		corrected, err := d.ecc.readBurst(key, rowBytes, off, out)
		if err != nil {
			return nil, fmt.Errorf("memctl: %v: %w", addr, err)
		}
		if corrected > 0 {
			// Scrub: write the repaired word back to the array.
			copy(burst, out)
		}
	}
	return out, nil
}

// InjectBitError flips one stored data bit — a cell upset. byteOffset and
// bit address within the burst at addr. The row is materialized if needed.
func (d *Device) InjectBitError(addr Address, byteOffset, bit int) {
	if !d.geom.Contains(addr) {
		panic(fmt.Sprintf("memctl: inject at %v outside geometry", addr))
	}
	if byteOffset < 0 || byteOffset >= d.geom.BurstBytes || bit < 0 || bit > 7 {
		panic(fmt.Sprintf("memctl: inject at byte %d bit %d out of burst", byteOffset, bit))
	}
	key := d.rowKey(addr.Bank, addr.Row)
	rowBytes := d.geom.Cols * d.geom.BurstBytes
	row, ok := d.storage[key]
	if !ok {
		row = make([]byte, rowBytes)
		d.storage[key] = row
		if d.ecc != nil {
			d.ecc.rowChecks(key, rowBytes)
		}
	}
	row[addr.Col*d.geom.BurstBytes+byteOffset] ^= 1 << bit
}

// Refresh models a refresh cycle: all banks precharge. (Cell retention is
// not modelled; refresh matters here for its scheduling interference.)
func (d *Device) Refresh() { d.PrechargeAll() }
