package memctl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"divot/internal/ecc"
)

// Sentinel errors the device distinguishes for the controller.
var (
	// ErrUnauthorized is returned when the module-side DIVOT gate rejects
	// a column access.
	ErrUnauthorized = errors.New("memctl: access blocked by module gate")
	// ErrUncorrectable is returned when ECC detects a multi-bit upset it
	// cannot repair.
	ErrUncorrectable = errors.New("memctl: uncorrectable ECC error")
)

// ECCStats counts the ECC engine's work.
type ECCStats struct {
	CorrectedWords     int64
	UncorrectableReads int64
}

// eccSidecar holds the check bits for the device's rows: one CheckBits per
// 8-byte word, allocated lazily alongside the data rows.
type eccSidecar struct {
	checks map[int64][]ecc.CheckBits
	// Stats accumulates correction activity.
	Stats ECCStats
}

func newECCSidecar() *eccSidecar {
	return &eccSidecar{checks: make(map[int64][]ecc.CheckBits)}
}

// rowChecks returns (allocating if needed) the check-bit slice for a row of
// the given byte size.
func (s *eccSidecar) rowChecks(key int64, rowBytes int) []ecc.CheckBits {
	c, ok := s.checks[key]
	if !ok {
		c = make([]ecc.CheckBits, rowBytes/8)
		// Fresh rows read as zero; pre-set the check bits to match so the
		// first read of an untouched word decodes clean.
		zero := ecc.Encode(0)
		for i := range c {
			c[i] = zero
		}
		s.checks[key] = c
	}
	return c
}

// writeBurst updates the check bits for a burst written at byte offset off.
func (s *eccSidecar) writeBurst(key int64, rowBytes, off int, data []byte) {
	checks := s.rowChecks(key, rowBytes)
	for w := 0; w < len(data)/8; w++ {
		word := binary.LittleEndian.Uint64(data[w*8:])
		checks[off/8+w] = ecc.Encode(word)
	}
}

// readBurst verifies and repairs a burst in place. It returns the number of
// corrected words, or an error if any word is uncorrectable.
func (s *eccSidecar) readBurst(key int64, rowBytes, off int, data []byte) (int, error) {
	checks := s.rowChecks(key, rowBytes)
	corrected := 0
	for w := 0; w < len(data)/8; w++ {
		word := binary.LittleEndian.Uint64(data[w*8:])
		fixed, verdict := ecc.Decode(word, checks[off/8+w])
		switch verdict {
		case ecc.Corrected:
			corrected++
			s.Stats.CorrectedWords++
			binary.LittleEndian.PutUint64(data[w*8:], fixed)
		case ecc.Detected:
			s.Stats.UncorrectableReads++
			return corrected, fmt.Errorf("%w: word %d of burst", ErrUncorrectable, w)
		}
	}
	return corrected, nil
}
