package attest

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Error codes. Every error response carries exactly one; StatusFor maps each
// to its HTTP status. Clients branch on the code — the status is transport
// decoration.
const (
	// CodeBadRequest (400): the request was malformed (unparseable body,
	// bad query parameter).
	CodeBadRequest = "bad_request"
	// CodeUnknownLink (404): the named bus is not part of the fleet.
	CodeUnknownLink = "unknown_link"
	// CodeNotCalibrated (409): the bus exists but has no enrollment to
	// attest against.
	CodeNotCalibrated = "not_calibrated"
	// CodeUnavailable (503): the daemon is shutting down; retry elsewhere.
	CodeUnavailable = "unavailable"
	// CodeInternal (500): the daemon failed; the message is diagnostic only.
	CodeInternal = "internal"
)

// StatusFor returns the HTTP status an error code travels under. Unknown
// codes (a newer server talking to an older client's vocabulary) map to 500.
func StatusFor(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnknownLink:
		return http.StatusNotFound
	case CodeNotCalibrated:
		return http.StatusConflict
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// Error is the wire error payload. It implements error so clients can
// surface it directly.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Envelope is the versioned wrapper around every JSON response. Exactly one
// of Data and Error is set.
type Envelope struct {
	V     int             `json:"v"`
	Data  json.RawMessage `json:"data,omitempty"`
	Error *Error          `json:"error,omitempty"`
}

// WriteData renders a success envelope. Encoding failures of v itself are a
// programming error and reported as a 500 error envelope.
func WriteData(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		WriteError(w, CodeInternal, "encoding response: %v", err)
		return
	}
	writeEnvelope(w, status, Envelope{V: Version, Data: raw})
}

// WriteError renders an error envelope under the code's documented status.
func WriteError(w http.ResponseWriter, code, format string, args ...any) {
	writeEnvelope(w, StatusFor(code), Envelope{
		V:     Version,
		Error: &Error{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

func writeEnvelope(w http.ResponseWriter, status int, env Envelope) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(env) //nolint:errcheck // client gone mid-response
}

// ParseBody unwraps an envelope: an error envelope comes back as *Error, a
// success envelope is unmarshalled into out (out may be nil to discard).
// Future protocol versions are rejected rather than misread.
func ParseBody(body []byte, out any) error {
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("attest: response is not an envelope: %w", err)
	}
	if env.V > Version {
		return fmt.Errorf("attest: server speaks protocol v%d, this client v%d", env.V, Version)
	}
	if env.Error != nil {
		return env.Error
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(env.Data, out); err != nil {
		return fmt.Errorf("attest: decoding response data: %w", err)
	}
	return nil
}
