package attest

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"divot/internal/core"
	"divot/internal/telemetry"
)

func TestWriteDataRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteData(rec, http.StatusOK, AttestResponse{
		Results:     []AuthReport{{ID: "dimm0", Accepted: true, Score: 0.99}},
		AllAccepted: true,
	})
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var out AttestResponse
	if err := ParseBody(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.AllAccepted || len(out.Results) != 1 || out.Results[0].ID != "dimm0" {
		t.Errorf("round-trip mangled payload: %+v", out)
	}
	if !strings.Contains(rec.Body.String(), `"v": 1`) {
		t.Errorf("no version in envelope: %s", rec.Body.String())
	}
}

func TestWriteErrorCarriesCodeAndStatus(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, CodeUnknownLink, "no bus %q", "ghost")
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
	err := ParseBody(rec.Body.Bytes(), nil)
	var werr *Error
	if !errors.As(err, &werr) {
		t.Fatalf("ParseBody error = %v (%T), want *Error", err, err)
	}
	if werr.Code != CodeUnknownLink || !strings.Contains(werr.Message, `"ghost"`) {
		t.Errorf("error = %+v", werr)
	}
}

func TestStatusForCoversEveryCode(t *testing.T) {
	want := map[string]int{
		CodeBadRequest:    400,
		CodeUnknownLink:   404,
		CodeNotCalibrated: 409,
		CodeUnavailable:   503,
		CodeInternal:      500,
		"something-new":   500,
	}
	for code, status := range want {
		if got := StatusFor(code); got != status {
			t.Errorf("StatusFor(%s) = %d, want %d", code, got, status)
		}
	}
}

func TestParseBodyRejectsFutureVersion(t *testing.T) {
	body := []byte(`{"v": 99, "data": {}}`)
	if err := ParseBody(body, nil); err == nil || !strings.Contains(err.Error(), "v99") {
		t.Errorf("future version accepted: %v", err)
	}
}

func TestEventFromTelemetry(t *testing.T) {
	ev := EventFromTelemetry(telemetry.Event{
		Seq: 7, Kind: telemetry.EventAlert, Link: "dimm1", Side: "cpu",
		Round: 12, Score: 0.42, To: "auth-failure", Detail: "score 0.42",
	})
	if ev.Seq != 7 || ev.Kind != "alert" || ev.Link != "dimm1" ||
		ev.Side != "cpu" || ev.Round != 12 || ev.Score != 0.42 {
		t.Errorf("conversion mangled event: %+v", ev)
	}
}

// TestLinkHealthViewsNilStaysNil pins the null-vs-[] contract: the converter
// does not paper over a nil health slice, so the facade's guarantee of a
// non-nil HealthAll result is what keeps /v1/health encoding "[]".
func TestLinkHealthViewsNilStaysNil(t *testing.T) {
	if got := LinkHealthViews(nil); got != nil {
		t.Errorf("LinkHealthViews(nil) = %#v, want nil", got)
	}
	raw, err := json.Marshal(FleetHealthResponse{Links: LinkHealthViews([]core.LinkHealth{})})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"links":[]`) {
		t.Errorf(`empty fleet encoded %s, want "links":[]`, raw)
	}
}

func TestLinkHealthViewsConverts(t *testing.T) {
	views := LinkHealthViews([]core.LinkHealth{{
		ID:     "dimm0",
		CPU:    core.EndpointHealth{Side: core.SideCPU, State: core.HealthDegraded, MaskedBins: 3, LastScore: 0.9},
		Module: core.EndpointHealth{Side: core.SideModule, State: core.HealthOK, LastScore: 0.95},
	}})
	if len(views) != 1 {
		t.Fatalf("len = %d", len(views))
	}
	v := views[0]
	if v.State != "degraded" || v.CPU.State != "degraded" || v.CPU.MaskedBins != 3 || v.Module.State != "ok" {
		t.Errorf("view = %+v", v)
	}
}
