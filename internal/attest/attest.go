// Package attest is the wire schema of the remote attestation API — the one
// definition of the v1 JSON protocol spoken between the divotd daemon and
// remote verifiers (the divot/client SDK, divotctl, curl).
//
// Every JSON response is wrapped in a versioned envelope:
//
//	{"v": 1, "data": {...}}                              success
//	{"v": 1, "error": {"code": "...", "message": "..."}} failure
//
// Error codes map 1:1 to HTTP status codes (StatusFor); clients should
// branch on the code, not the transport status. The DTO structs below are
// the payloads under "data". They are deliberately flat, value-typed, and
// made only of basic types so daemon and client cannot drift apart — the
// daemon converts engine types into them at the boundary (EventFromTelemetry,
// LinkHealthViews) and the client re-exports them by alias.
//
// Streaming: GET /v1/links/{id}/events is server-sent events. Each frame is
//
//	id: <seq>
//	event: <kind>
//	data: <Event JSON>
//
// with ": hb" comment lines as heartbeats. Sequence numbers are per-link,
// start at 1, and are strictly monotonic for the daemon's lifetime; a client
// resumes after a disconnect with ?after=<last seen seq>. Events older than
// the daemon's per-link retention ring cannot be replayed — a resume past the
// ring's tail is answered from the oldest retained event, and the SDK
// surfaces that discontinuity as a typed error (client.ResumeGapError)
// instead of delivering across the hole.
package attest

import (
	"divot/internal/core"
	"divot/internal/telemetry"
)

// Version is the wire protocol version carried in every envelope.
const Version = 1

// HealthView is the fleet liveness summary served at GET /healthz.
type HealthView struct {
	// Status is "ok" while the daemon serves.
	Status string `json:"status"`
	// Buses is the fleet size.
	Buses int `json:"buses"`
	// FleetOK is true while every bus still authenticates ("degraded" —
	// benign dead-bin masking — still passes; only "failed" does not).
	FleetOK bool `json:"fleet_ok"`
	// UptimeS is seconds since the daemon started serving.
	UptimeS float64 `json:"uptime_s"`
	// FederationID labels the federation this daemon (or aggregator)
	// belongs to; empty when not federated.
	FederationID string `json:"federation_id,omitempty"`
}

// LinkSummary is the GET /v1/links representation of one bus.
type LinkSummary struct {
	ID         string  `json:"id"`
	Rounds     uint64  `json:"rounds"`
	Health     string  `json:"health"`
	Reaction   string  `json:"reaction"`
	CPUGate    bool    `json:"cpu_gate_open"`
	ModuleGate bool    `json:"module_gate_open"`
	CPUScore   float64 `json:"cpu_score"`
	Alerts     int     `json:"alerts"`
}

// LinksResponse is the GET /v1/links payload.
type LinksResponse struct {
	Links []LinkSummary `json:"links"`
}

// ReadyView is the GET /readyz payload: startup progress. Unlike every other
// route, /readyz answers 200 from the moment the daemon binds its socket —
// before the fleet is calibrated or warm-restored — so orchestrators and
// scripts can watch Calibrated/WarmLoaded climb toward Total instead of
// polling blindly. Every other route answers 503 (code "unavailable", with a
// Retry-After header) until Ready flips true.
type ReadyView struct {
	// Ready is true once every bus is calibrated or restored and the fleet
	// schedulers are running.
	Ready bool `json:"ready"`
	// Calibrated counts buses brought up so far, warm or cold.
	Calibrated int `json:"calibrated"`
	// WarmLoaded counts the subset restored from enrollment snapshots
	// (zero calibration measurements).
	WarmLoaded int `json:"warm_loaded,omitempty"`
	// Total is the fleet size.
	Total int `json:"total"`
}

// HistorySample condenses one monitoring round into its durable outcome, as
// retained in the daemon's per-bus score history (and, with a state_dir, in
// the history WAL) and served at GET /v1/links/{id}/history.
type HistorySample struct {
	// Round is the bus's monitoring round number.
	Round uint64 `json:"round"`
	// Score is the CPU-side similarity the round measured.
	Score float64 `json:"score"`
	// Health is the bus condition after the round (ok/suspect/degraded/failed).
	Health string `json:"health"`
	// Reaction is the reactor's escalation state after the round.
	Reaction string `json:"reaction"`
	// Verdict summarizes the round's alerts: "ok", "auth-failure", "tamper",
	// or "auth-failure+tamper".
	Verdict string `json:"verdict"`
}

// HistoryResponse is the GET /v1/links/{id}/history payload: the retained
// score history of one bus, oldest first. After a warm restart the samples
// recovered from the history WAL appear here, so a verifier sees one
// continuous record across daemon generations.
type HistoryResponse struct {
	Link    string          `json:"link"`
	Samples []HistorySample `json:"samples"`
}

// Event is one bus-affecting protocol event, as retained in the daemon's
// per-link history and streamed over GET /v1/links/{id}/events.
type Event struct {
	// Seq is the per-link sequence number (1-based, strictly monotonic);
	// the stream resume protocol keys on it.
	Seq    uint64  `json:"seq"`
	Kind   string  `json:"kind"`
	Link   string  `json:"link,omitempty"`
	Side   string  `json:"side,omitempty"`
	Round  uint64  `json:"round"`
	Score  float64 `json:"score,omitempty"`
	From   string  `json:"from,omitempty"`
	To     string  `json:"to,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// EventsResponse is the GET /v1/links/{id}/alerts payload: the retained
// event history of one bus, oldest first.
type EventsResponse struct {
	Link   string  `json:"link"`
	Events []Event `json:"events"`
}

// EventFromTelemetry converts an engine telemetry event into its wire form.
// The caller owns the Seq field (the engine stamps sink-local sequence
// numbers that are not the per-link feed sequence).
func EventFromTelemetry(ev telemetry.Event) Event {
	return Event{
		Seq: ev.Seq, Kind: ev.Kind.String(), Link: ev.Link, Side: ev.Side,
		Round: ev.Round, Score: ev.Score, From: ev.From, To: ev.To,
		Detail: ev.Detail,
	}
}

// AttestRequest is the POST /v1/attest body. An empty Links list (or an
// empty body) attests every bus of the fleet.
type AttestRequest struct {
	Links []string `json:"links,omitempty"`
}

// AuthReport is one bus's attestation verdict: the outcome of a read-only
// spot-check measurement against the enrolled fingerprint, plus the bus's
// monitored health at that moment.
type AuthReport struct {
	ID string `json:"id"`
	// Accepted is true only when the measurement matched the enrollment
	// with no tamper signature.
	Accepted bool `json:"accepted"`
	// Score is the CPU-side similarity (1 when no auth mismatch occurred).
	Score float64 `json:"score"`
	// Tampered flags a localized IIP change at TamperPosition meters.
	Tampered       bool    `json:"tampered"`
	TamperPosition float64 `json:"tamper_position"`
	// Health is the bus's monitored condition (ok/suspect/degraded/failed).
	Health string `json:"health"`
	// Cached is true when the verdict was served from the daemon's
	// last-round attestation cache (within its max_staleness_ms bound)
	// instead of a fresh spot-check measurement.
	Cached bool `json:"cached,omitempty"`
	// Daemon is the shard attribution in a federated response: the name of
	// the divotd instance that produced this verdict. Empty on answers from
	// a single daemon.
	Daemon string `json:"daemon,omitempty"`
}

// AttestResponse is the POST /v1/attest payload, results in request order
// (fleet order when the request named no buses).
type AttestResponse struct {
	Results []AuthReport `json:"results"`
	// AllAccepted is true when every attested bus passed.
	AllAccepted bool `json:"all_accepted"`
}

// EndpointHealthView is one endpoint's condition in GET /v1/health.
type EndpointHealthView struct {
	State          string  `json:"state"`
	MaskedBins     int     `json:"masked_bins"`
	MaskedFraction float64 `json:"masked_fraction,omitempty"`
	SuspectRounds  int     `json:"suspect_rounds,omitempty"`
	Failures       int     `json:"failures,omitempty"`
	Reenrollments  int     `json:"reenrollments,omitempty"`
	LastScore      float64 `json:"last_score"`
}

// LinkHealthView is one bus's condition in GET /v1/health.
type LinkHealthView struct {
	ID     string             `json:"id"`
	State  string             `json:"state"`
	CPU    EndpointHealthView `json:"cpu"`
	Module EndpointHealthView `json:"module"`
}

// FleetHealthResponse is the GET /v1/health payload.
type FleetHealthResponse struct {
	// FederationID labels the federation the daemon belongs to; empty when
	// not federated.
	FederationID string           `json:"federation_id,omitempty"`
	Links        []LinkHealthView `json:"links"`
}

// ShardStatus is one divotd instance's standing inside a divotherd
// federation, as reported in federated responses and GET /v1/daemons.
type ShardStatus struct {
	// Daemon is the aggregator-local name of the instance.
	Daemon string `json:"daemon"`
	// Addr is the instance's base URL.
	Addr string `json:"addr"`
	// Up reports the aggregator's current liveness verdict.
	Up bool `json:"up"`
	// Buses is how many buses the instance serves (0 while it is down and
	// its bus set is unknown).
	Buses int `json:"buses"`
}

// ShardError is one entry of the partial-failure envelope: a set of buses
// whose verdicts are missing from a federated response, and why. Daemon is
// empty when no live daemon serves the buses at all.
type ShardError struct {
	Daemon string `json:"daemon,omitempty"`
	// Code is the wire error code that best describes the failure
	// (unavailable for transport faults and dead daemons).
	Code    string `json:"code"`
	Message string `json:"message"`
	// Links are the affected bus ids, in request order.
	Links []string `json:"links"`
}

// FederatedAttestResponse is the POST /v1/attest payload served by a
// divotherd aggregator. It is a strict superset of AttestResponse — results
// are merged across shards back into request order, each verdict carrying
// its shard attribution — so single-daemon clients can decode it unchanged.
// A shard failure never fabricates a verdict: the affected buses are listed
// in Errors and Complete is false.
type FederatedAttestResponse struct {
	Results []AuthReport `json:"results"`
	// AllAccepted is true only when every requested bus was attested and
	// passed — a partial answer is never "all accepted".
	AllAccepted bool `json:"all_accepted"`
	// Complete is true when every requested bus produced a verdict.
	Complete bool `json:"complete"`
	// Shards summarizes the daemons the request fanned out to.
	Shards []ShardStatus `json:"shards,omitempty"`
	// Errors is the partial-failure envelope, one entry per failed shard.
	Errors []ShardError `json:"errors,omitempty"`
}

// DaemonHealth is one daemon's entry in a federated GET /v1/health rollup.
type DaemonHealth struct {
	Daemon string `json:"daemon"`
	Addr   string `json:"addr"`
	Up     bool   `json:"up"`
	// Buses is the daemon's fleet size.
	Buses int `json:"buses"`
	// FleetOK mirrors the daemon's own /healthz verdict (false while down).
	FleetOK bool `json:"fleet_ok"`
	// Error carries the probe failure while the daemon is down.
	Error string `json:"error,omitempty"`
}

// HerdHealthResponse is the GET /v1/health payload served by a divotherd
// aggregator: per-daemon liveness plus the merged per-bus health of every
// reachable shard, each bus reported once by its assigned daemon.
type HerdHealthResponse struct {
	FederationID string           `json:"federation_id,omitempty"`
	Daemons      []DaemonHealth   `json:"daemons"`
	Links        []LinkHealthView `json:"links"`
	// Complete is true when every daemon answered its health probe.
	Complete bool `json:"complete"`
}

// DaemonsResponse is the GET /v1/daemons payload of a divotherd aggregator.
type DaemonsResponse struct {
	FederationID string        `json:"federation_id,omitempty"`
	Daemons      []ShardStatus `json:"daemons"`
}

// LinkHealthViews converts engine health snapshots into their wire form. A
// nil input stays nil — which JSON-encodes as null, so callers feeding a
// response must hand in a non-nil (possibly empty) slice; System.HealthAll
// guarantees that.
func LinkHealthViews(in []core.LinkHealth) []LinkHealthView {
	if in == nil {
		return nil
	}
	out := make([]LinkHealthView, len(in))
	for i, h := range in {
		out[i] = LinkHealthView{
			ID:     h.ID,
			State:  h.State().String(),
			CPU:    endpointHealthView(h.CPU),
			Module: endpointHealthView(h.Module),
		}
	}
	return out
}

func endpointHealthView(h core.EndpointHealth) EndpointHealthView {
	return EndpointHealthView{
		State:          h.State.String(),
		MaskedBins:     h.MaskedBins,
		MaskedFraction: h.MaskedFraction,
		SuspectRounds:  h.SuspectRounds,
		Failures:       h.Failures,
		Reenrollments:  h.Reenrollments,
		LastScore:      h.LastScore,
	}
}
