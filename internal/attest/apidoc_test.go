package attest

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// apiDocPath is the canonical wire-protocol reference this test enforces.
const apiDocPath = "../../docs/API.md"

// goldenExamples are the doc's example payloads, keyed by the
// `<!-- api-golden: name -->` tag preceding each ```json block in API.md.
// The doc block must match json.MarshalIndent of the value here exactly —
// the reference cannot drift from the schema structs without this test
// failing on either side.
func goldenExamples() map[string]any {
	healthView := HealthView{
		Status: "ok", Buses: 4, FleetOK: true, UptimeS: 932.5, FederationID: "prod-east",
	}
	return map[string]any{
		"envelope-success": Envelope{V: Version, Data: mustRaw(healthView)},
		"envelope-error": Envelope{V: Version, Error: &Error{
			Code: CodeUnknownLink, Message: `unknown bus "dimm9"`,
		}},
		"healthz": healthView,
		"links": LinksResponse{Links: []LinkSummary{{
			ID: "dimm0", Rounds: 4182, Health: "ok", Reaction: "normal",
			CPUGate: true, ModuleGate: true, CPUScore: 0.9996, Alerts: 0,
		}}},
		"alerts": EventsResponse{Link: "dimm1", Events: []Event{{
			Seq: 17, Kind: "auth_mismatch", Link: "dimm1", Side: "cpu",
			Round: 2204, Score: 0.41,
		}, {
			Seq: 18, Kind: "reaction", Link: "dimm1", Round: 2204,
			From: "normal", To: "quarantine", Detail: "score 0.41 under threshold",
		}}},
		"readyz": ReadyView{
			Ready: false, Calibrated: 12, WarmLoaded: 3, Total: 1000,
		},
		"history": HistoryResponse{Link: "dimm1", Samples: []HistorySample{{
			Round: 2203, Score: 0.9996, Health: "ok", Reaction: "normal", Verdict: "ok",
		}, {
			Round: 2204, Score: 0.41, Health: "suspect", Reaction: "quarantine", Verdict: "auth-failure",
		}}},
		"authenticate": AuthReport{
			ID: "dimm0", Accepted: true, Score: 0.9996, Tampered: false,
			TamperPosition: 0, Health: "ok", Cached: true,
		},
		"attest-request": AttestRequest{Links: []string{"dimm0", "dimm1"}},
		"attest": AttestResponse{Results: []AuthReport{{
			ID: "dimm0", Accepted: true, Score: 0.9996, Health: "ok", Cached: true,
		}, {
			ID: "dimm1", Accepted: false, Score: 0.41, Tampered: true,
			TamperPosition: 0.0023, Health: "suspect",
		}}, AllAccepted: false},
		"fleet-health": FleetHealthResponse{
			FederationID: "prod-east",
			Links: []LinkHealthView{{
				ID: "dimm0", State: "ok",
				CPU:    EndpointHealthView{State: "ok", MaskedBins: 0, LastScore: 0.9996},
				Module: EndpointHealthView{State: "ok", MaskedBins: 2, MaskedFraction: 0.0058, LastScore: 0.9991},
			}},
		},
		"federated-attest": FederatedAttestResponse{
			Results: []AuthReport{{
				ID: "dimm0", Accepted: true, Score: 0.9996, Health: "ok",
				Cached: true, Daemon: "d0",
			}},
			AllAccepted: false,
			Complete:    false,
			Shards: []ShardStatus{
				{Daemon: "d0", Addr: "http://10.0.0.1:9720", Up: true, Buses: 1},
				{Daemon: "d1", Addr: "http://10.0.0.2:9720", Up: false, Buses: 0},
			},
			Errors: []ShardError{{
				Daemon: "d1", Code: CodeUnavailable,
				Message: `divotd: Post "http://10.0.0.2:9720/v1/attest": connection refused`,
				Links:   []string{"dimm1"},
			}},
		},
		"herd-health": HerdHealthResponse{
			FederationID: "prod-east",
			Daemons: []DaemonHealth{
				{Daemon: "d0", Addr: "http://10.0.0.1:9720", Up: true, Buses: 2, FleetOK: true},
				{Daemon: "d1", Addr: "http://10.0.0.2:9720", Up: false, Buses: 2,
					Error: `divotd: Get "http://10.0.0.2:9720/healthz": connection refused`},
			},
			Links: []LinkHealthView{{
				ID: "dimm0", State: "ok",
				CPU:    EndpointHealthView{State: "ok", LastScore: 0.9996},
				Module: EndpointHealthView{State: "ok", LastScore: 0.9991},
			}},
			Complete: false,
		},
		"daemons": DaemonsResponse{
			FederationID: "prod-east",
			Daemons: []ShardStatus{
				{Daemon: "d0", Addr: "http://10.0.0.1:9720", Up: true, Buses: 2},
				{Daemon: "d1", Addr: "http://10.0.0.2:9720", Up: true, Buses: 2},
			},
		},
	}
}

func mustRaw(v any) json.RawMessage {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return raw
}

// goldenTag matches the marker comment that names the example a ```json
// block demonstrates.
var goldenTag = regexp.MustCompile(`<!--\s*api-golden:\s*([a-z0-9-]+)\s*-->`)

// extractGoldenBlocks returns tag -> JSON block body from the doc.
func extractGoldenBlocks(t *testing.T, doc string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		m := goldenTag.FindStringSubmatch(lines[i])
		if m == nil {
			continue
		}
		name := m[1]
		// The tagged block is the next ```json fence.
		j := i + 1
		for j < len(lines) && !strings.HasPrefix(lines[j], "```json") {
			j++
		}
		if j == len(lines) {
			t.Fatalf("API.md: tag %q has no ```json block after it", name)
		}
		var body []string
		for j++; j < len(lines) && !strings.HasPrefix(lines[j], "```"); j++ {
			body = append(body, lines[j])
		}
		if _, dup := out[name]; dup {
			t.Fatalf("API.md: tag %q appears twice", name)
		}
		out[name] = strings.Join(body, "\n")
	}
	return out
}

// TestAPIDocGolden pins every tagged example in docs/API.md to the schema
// structs: each block must byte-match json.MarshalIndent of the Go value in
// goldenExamples. A schema change that touches the wire format fails here
// until the reference is updated, and vice versa.
func TestAPIDocGolden(t *testing.T) {
	raw, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("reading %s: %v", apiDocPath, err)
	}
	blocks := extractGoldenBlocks(t, string(raw))
	examples := goldenExamples()

	for name := range blocks {
		if _, ok := examples[name]; !ok {
			t.Errorf("API.md tags example %q, but the test knows no such value", name)
		}
	}
	for name, v := range examples {
		block, ok := blocks[name]
		if !ok {
			t.Errorf("API.md is missing a block tagged <!-- api-golden: %s -->", name)
			continue
		}
		want, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatalf("marshalling example %q: %v", name, err)
		}
		if got := strings.TrimSpace(block); got != string(want) {
			t.Errorf("API.md example %q drifted from the schema.\n--- doc:\n%s\n--- schema:\n%s",
				name, got, want)
		}
	}
}

// TestAPIDocCoversEndpoints asserts the reference documents every route both
// servers expose.
func TestAPIDocCoversEndpoints(t *testing.T) {
	raw, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("reading %s: %v", apiDocPath, err)
	}
	doc := string(raw)
	endpoints := []string{
		// divotd
		"GET /healthz",
		"GET /readyz",
		"GET /v1/links/{id}/history",
		"GET /metrics",
		"GET /v1/health",
		"GET /v1/links",
		"GET /v1/links/{id}/alerts",
		"GET /v1/links/{id}/events",
		"GET /v1/stream",
		"POST /v1/links/{id}/authenticate",
		"POST /v1/attest",
		// divotherd
		"GET /v1/daemons",
	}
	for _, ep := range endpoints {
		if !strings.Contains(doc, ep) {
			t.Errorf("API.md does not document %q", ep)
		}
	}
	// The SSE resume protocol and the cache marker must be covered.
	for _, needle := range []string{
		"?after=", `"cached": true`, "text/event-stream",
		// The binary stream: content type, the shell-client handshake form,
		// and the degradation metrics must all be covered.
		"application/x-divot-stream", "link:seq", "divot_stream_dropped_total",
	} {
		if !strings.Contains(doc, needle) {
			t.Errorf("API.md does not mention %q", needle)
		}
	}
}

// TestAPIDocCoversErrorCodes asserts every wire error code is documented
// together with its HTTP status.
func TestAPIDocCoversErrorCodes(t *testing.T) {
	raw, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("reading %s: %v", apiDocPath, err)
	}
	doc := string(raw)
	for _, code := range []string{
		CodeBadRequest, CodeUnknownLink, CodeNotCalibrated, CodeUnavailable, CodeInternal,
	} {
		status := StatusFor(code)
		found := false
		for _, line := range strings.Split(doc, "\n") {
			if strings.Contains(line, "`"+code+"`") && strings.Contains(line, fmt.Sprint(status)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("API.md does not document error code %q with status %d on one line", code, status)
		}
	}
}
