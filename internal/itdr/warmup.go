package itdr

import (
	"math"
	"sync"

	"divot/internal/analog"
	"divot/internal/signal"
	"divot/internal/stats"
	"divot/internal/txline"
)

// warmup holds everything about an instrument's acquisition that is a pure
// function of (Config, Probe) under clock-triggered probing: the forward
// incident edge, the per-bin Vernier reference sequences, and the per-bin
// composite CDFs with a memo of cold bisections. Clock triggering advances
// every bin by exactly one cycle per trial, so the reference schedule —
// and therefore each bin's inverse map — is identical for every measurement
// of every instrument sharing the configuration. A 1000-bus fleet of
// identical buses builds all of this once instead of a thousand times, which
// is the fleet-wide dedup of the composite-CDF/synthesis warm-up.
//
// Everything here is immutable after construction (the bisect memos are
// internally synchronized), so sharing across instruments and goroutines is
// free. Values produced through the warmup are bit-identical to the uncached
// path: the refs come from the same Level calls at the same times, the CDFs
// from the same constructor, and the memoized Invert from the same pure
// bisection.
type warmup struct {
	fwd  *signal.Waveform
	refs [][]float64
	bins []warmBin
}

// warmBin is the shared immutable inverse-map core for one ETS phase bin.
type warmBin struct {
	cdf  *stats.CompositeCDF
	memo bisectMemo
}

// bisectMemo caches CompositeCDF.Invert results for the un-promoted
// (first-measurement) inverter. Invert is a pure function of the CDF
// parameters and p, and with TrialsPerBin trials p takes at most
// TrialsPerBin+1 distinct clamped values, so the memo stays tiny while
// collapsing the fleet's cold-start bisection cost: after the first
// instrument's first measurement, every other instrument's first measurement
// inverts by lookup.
type bisectMemo struct {
	m sync.Map // math.Float64bits(p) → float64
}

func (bm *bisectMemo) invert(cdf *stats.CompositeCDF, p float64) float64 {
	key := math.Float64bits(p)
	if v, ok := bm.m.Load(key); ok {
		return v.(float64)
	}
	v := cdf.Invert(p)
	bm.m.Store(key, v)
	return v
}

// warmupKey identifies one shared warmup: the full instrument config (with
// the parallelism knob zeroed — it cannot affect any cached value) plus the
// probe shape the forward edge is built from.
type warmupKey struct {
	cfg   Config
	probe txline.Probe
}

// warmupCache deduplicates warmups process-wide. Growth is bounded by the
// set of distinct (Config, Probe) pairs the process instantiates — one entry
// for a homogeneous fleet, a few dozen for an experiment sweep — at roughly
// 150 KB per entry at the default geometry.
var warmupCache sync.Map // warmupKey → *warmupEntry

type warmupEntry struct {
	once sync.Once
	w    *warmup
}

// warmupFor returns the shared warmup for the configuration, building it at
// most once per process. Only clock-triggered configs have one: data-
// triggered modes draw their cycle advances from per-measurement randomness,
// so their reference schedules never repeat.
func warmupFor(cfg Config, probe txline.Probe) *warmup {
	if cfg.Trigger != TriggerClock {
		return nil
	}
	key := warmupKey{cfg: cfg, probe: probe}
	key.cfg.Parallelism = 0
	e, _ := warmupCache.LoadOrStore(key, &warmupEntry{})
	ent := e.(*warmupEntry)
	ent.once.Do(func() { ent.w = newWarmup(cfg, probe) })
	return ent.w
}

// newWarmup precomputes the shared acquisition state. Every expression below
// mirrors the per-measurement code byte for byte: the forward edge matches
// measureAt's lazy StepEdge, the trial times and Level calls match
// measureBin's clock-triggered loop, and the CDF construction matches
// APC.NewInverter.
func newWarmup(cfg Config, probe txline.Probe) *warmup {
	bins := cfg.Bins()
	rate := cfg.EquivalentRate()
	mod := analog.NewTriangleModulator(cfg.ModFrequency(), cfg.ModAmplitude, cfg.ModTauRatio)
	apc := NewAPC(cfg.ComparatorNoise, cfg.ComparatorOffset)
	sigma := apc.gaussian().Sigma
	clockPeriod := 1 / cfg.SampleClockHz

	w := &warmup{
		fwd:  signal.StepEdge(rate, bins, 0, probe.RiseTime, probe.Amplitude),
		refs: make([][]float64, bins),
		bins: make([]warmBin, bins),
	}
	for m := 0; m < bins; m++ {
		tBin := float64(m) * cfg.PhaseStepSec
		cycleBase := m * cfg.TrialsPerBin // binStride == TrialsPerBin under TriggerClock
		refs := make([]float64, cfg.TrialsPerBin)
		cycle := 0
		for j := 0; j < cfg.TrialsPerBin; j++ {
			cycle++
			tAbs := float64(cycleBase+cycle)*clockPeriod + tBin
			refs[j] = mod.Level(tAbs)
		}
		w.refs[m] = refs
		centers := make([]float64, len(refs))
		for i, r := range refs {
			centers[i] = r - apc.Offset
		}
		w.bins[m].cdf = stats.NewCompositeCDF(sigma, centers)
	}
	return w
}
