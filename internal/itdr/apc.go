package itdr

import (
	"fmt"
	"math"

	"divot/internal/stats"
)

// APC implements the analog-to-probability conversion math: the forward map
// from signal voltage to ones-probability for a given reference-level set,
// and the inverse map used to reconstruct the voltage from a measured count.
type APC struct {
	// NoiseSigma is the comparator's input-referred RMS noise.
	NoiseSigma float64
	// Offset is the comparator's calibrated static offset.
	Offset float64
}

// Probability returns p{Y=1} for signal voltage v against the given set of
// reference levels, each visited equally often (Eq. 1 generalized to the PDM
// composite of Fig. 4). With a single reference level this is the plain
// Gaussian CDF of Fig. 2.
func (a APC) Probability(v float64, refs []float64) float64 {
	if len(refs) == 0 {
		panic("itdr: APC needs at least one reference level")
	}
	g := stats.NewGaussian(0, a.NoiseSigma)
	var p float64
	for _, r := range refs {
		p += g.CDF(v + a.Offset - r)
	}
	return p / float64(len(refs))
}

// Sensitivity returns d p{Y=1} / d v at voltage v — the composite PDF, which
// is the APC sensitivity definition of Eq. 3.
func (a APC) Sensitivity(v float64, refs []float64) float64 {
	g := stats.NewGaussian(0, a.NoiseSigma)
	var s float64
	for _, r := range refs {
		s += g.PDF(v + a.Offset - r)
	}
	return s / float64(len(refs))
}

// EstimateVoltage inverts the composite CDF: given a measured ones-fraction
// over trials trials, it returns the voltage estimate (Eq. 2 generalized).
// The estimate is clamped to the invertible range spanned by the reference
// levels plus a few noise sigmas.
func (a APC) EstimateVoltage(onesFraction float64, trials int, refs []float64) float64 {
	if trials <= 0 {
		panic(fmt.Sprintf("itdr: non-positive trial count %d", trials))
	}
	// A count of 0 or trials carries only one-sided information; clamp the
	// fraction half a count inside so the inverse stays finite.
	eps := 0.5 / float64(trials)
	p := onesFraction
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	lo, hi := refs[0], refs[0]
	for _, r := range refs {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	lo -= 6 * a.NoiseSigma
	hi += 6 * a.NoiseSigma
	// The composite CDF is strictly monotone in v; bisect. 36 halvings of
	// a ~20 mV bracket reach sub-picovolt precision, far below the noise.
	for i := 0; i < 36; i++ {
		mid := (lo + hi) / 2
		if a.Probability(mid, refs) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// LinearRegion returns the width of the voltage interval around the center
// of the reference span where the APC sensitivity stays within the given
// relative tolerance of its central value — the "linear region" the paper
// uses to compare single-reference APC against PDM (Fig. 4). The interval is
// scanned at the given voltage step.
func (a APC) LinearRegion(refs []float64, tol, step float64) float64 {
	var center float64
	for _, r := range refs {
		center += r
	}
	center /= float64(len(refs))
	s0 := a.Sensitivity(center, refs)
	if s0 == 0 {
		return 0
	}
	within := func(v float64) bool {
		s := a.Sensitivity(v, refs)
		return math.Abs(s-s0) <= tol*s0
	}
	var lo, hi float64
	for v := center; within(v); v -= step {
		lo = v
	}
	for v := center; within(v); v += step {
		hi = v
	}
	return hi - lo
}
