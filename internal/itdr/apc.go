package itdr

import (
	"fmt"
	"math"
	"sync"

	"divot/internal/stats"
)

// APC implements the analog-to-probability conversion math: the forward map
// from signal voltage to ones-probability for a given reference-level set,
// and the inverse map used to reconstruct the voltage from a measured count.
//
// Invariant: NoiseSigma and Offset are fixed at construction and must not be
// mutated afterwards — NewAPC hoists the noise Gaussian into the value so the
// per-call maps stop rebuilding (and revalidating) it, and an Inverter built
// from an APC caches tables derived from both fields. Uncalibrated offset
// drift is modelled at the comparator (Reflectometer.InjectOffsetDrift), not
// here, precisely because the APC's inverse map is not supposed to know
// about it.
type APC struct {
	// NoiseSigma is the comparator's input-referred RMS noise.
	NoiseSigma float64
	// Offset is the comparator's calibrated static offset.
	Offset float64

	// gauss is the hoisted N(0, NoiseSigma) distribution. The zero value
	// (Sigma == 0) marks a literal-constructed APC; gaussian() falls back to
	// building it on the fly so the exported struct stays usable as a plain
	// value.
	gauss stats.Gaussian
}

// NewAPC returns an APC with the noise Gaussian hoisted into the value. All
// hot paths construct APCs through here; the composite-CDF maps below then
// reuse the cached distribution instead of calling stats.NewGaussian per
// evaluation.
func NewAPC(noiseSigma, offset float64) APC {
	return APC{
		NoiseSigma: noiseSigma,
		Offset:     offset,
		gauss:      stats.NewGaussian(0, noiseSigma),
	}
}

// gaussian returns the hoisted noise distribution, tolerating APCs built as
// struct literals (tests, experiment code) by constructing it on demand.
func (a APC) gaussian() stats.Gaussian {
	if a.gauss.Sigma != 0 {
		return a.gauss
	}
	return stats.NewGaussian(0, a.NoiseSigma)
}

// Probability returns p{Y=1} for signal voltage v against the given set of
// reference levels, each visited equally often (Eq. 1 generalized to the PDM
// composite of Fig. 4). With a single reference level this is the plain
// Gaussian CDF of Fig. 2.
func (a APC) Probability(v float64, refs []float64) float64 {
	if len(refs) == 0 {
		panic("itdr: APC needs at least one reference level")
	}
	g := a.gaussian()
	var p float64
	for _, r := range refs {
		p += g.CDF(v + a.Offset - r)
	}
	return p / float64(len(refs))
}

// Sensitivity returns d p{Y=1} / d v at voltage v — the composite PDF, which
// is the APC sensitivity definition of Eq. 3.
func (a APC) Sensitivity(v float64, refs []float64) float64 {
	if len(refs) == 0 {
		panic("itdr: APC needs at least one reference level")
	}
	g := a.gaussian()
	var s float64
	for _, r := range refs {
		s += g.PDF(v + a.Offset - r)
	}
	return s / float64(len(refs))
}

// inverterTableSize is the grid resolution of a promoted inverter. Over the
// default ~12 mV bracket this is a ~46 µV step, whose interpolation error
// (sub-5 µV, see the stats tests) sits three orders of magnitude below the
// per-bin counting noise.
const inverterTableSize = 256

// Inverter is the reusable inverse APC map for one fixed reference-level
// set: measured ones-fraction in, reconstructed voltage out. Constructing an
// Inverter sorts the levels once and hoists every per-call quantity; Promote
// additionally tabulates the composite CDF so steady-state inversion does no
// transcendental math at all. The Reflectometer keeps one Inverter per ETS
// phase bin and promotes it as soon as the bin's reference set proves stable
// across measurements (always, for clock-triggered probing).
//
// An Inverter is immutable after Promote and safe for concurrent use; the
// promotion itself must be single-goroutine (the measurement engine
// guarantees this by owning each bin's slot on exactly one worker).
type Inverter struct {
	cdf   *stats.CompositeCDF
	table *stats.InverseTable // nil until Promote
	refs  []float64           // the (unsorted) reference set this was built for

	// memo, when non-nil, caches un-promoted bisections fleet-wide (set by
	// the warmup-backed reset; see bisectMemo). It never changes a result:
	// Invert is a pure function of (cdf, p).
	memo *bisectMemo
}

// NewInverter builds the inverse map for the given reference levels. The
// slice is copied; callers may reuse their scratch buffer.
func (a APC) NewInverter(refs []float64) *Inverter {
	if len(refs) == 0 {
		panic("itdr: APC needs at least one reference level")
	}
	centers := make([]float64, len(refs))
	for i, r := range refs {
		centers[i] = r - a.Offset
	}
	return &Inverter{
		cdf:  stats.NewCompositeCDF(a.gaussian().Sigma, centers),
		refs: append([]float64(nil), refs...),
	}
}

// resetInverter rebuilds iv in place for the given reference levels,
// avoiding the per-bin heap Inverter of NewInverter. When the instrument has
// a shared warmup, the bin's CDF, reference slice, and bisect memo all alias
// the immutable fleet-wide copies; otherwise the CDF is built fresh and the
// refs are copied out of the caller's scratch, exactly as NewInverter does.
func (a APC) resetInverter(iv *Inverter, refs []float64, wb *warmBin) {
	if len(refs) == 0 {
		panic("itdr: APC needs at least one reference level")
	}
	if wb != nil {
		*iv = Inverter{cdf: wb.cdf, refs: refs, memo: &wb.memo}
		return
	}
	centers := make([]float64, len(refs))
	for i, r := range refs {
		centers[i] = r - a.Offset
	}
	*iv = Inverter{
		cdf:  stats.NewCompositeCDF(a.gaussian().Sigma, centers),
		refs: append([]float64(nil), refs...),
	}
}

// Matches reports whether the inverter was built for exactly this reference
// sequence — the cache-hit test for per-bin reuse across measurements.
func (iv *Inverter) Matches(refs []float64) bool {
	if len(refs) != len(iv.refs) {
		return false
	}
	for i, r := range refs {
		if r != iv.refs[i] {
			return false
		}
	}
	return true
}

// Promoted reports whether the composite CDF has been tabulated.
func (iv *Inverter) Promoted() bool { return iv.table != nil }

// Promote tabulates the composite CDF so subsequent Estimate calls invert by
// interpolation instead of bisection. Idempotent. The table itself comes
// from a process-wide cache keyed by the CDF's parameters: every instrument
// of the same configuration probes a given ETS bin with the same Vernier
// reference sequence, so a 1000-link fleet shares one ~4 KB table per bin
// instead of holding a thousand bitwise-identical copies.
func (iv *Inverter) Promote() {
	if iv.table == nil {
		iv.table = sharedInverseTable(iv.cdf)
	}
}

// tableCache shares promoted inverse tables across instruments. Tabulation
// is a pure function of the CDF parameters, so sharing cannot change any
// estimate; a fingerprint collision (different parameters, same key) falls
// back to a private table rather than evicting the first owner. The cache
// grows with the set of distinct instrument configurations seen by the
// process — bounded in practice, and each entry is a few KB.
var tableCache sync.Map // uint64 → *tableCacheEntry

type tableCacheEntry struct {
	cdf   *stats.CompositeCDF
	table *stats.InverseTable
}

func sharedInverseTable(cdf *stats.CompositeCDF) *stats.InverseTable {
	key := cdf.Fingerprint()
	if e, ok := tableCache.Load(key); ok {
		ent := e.(*tableCacheEntry)
		if ent.cdf.Equal(cdf) {
			return ent.table
		}
		return cdf.InverseTable(inverterTableSize)
	}
	t := cdf.InverseTable(inverterTableSize)
	if e, loaded := tableCache.LoadOrStore(key, &tableCacheEntry{cdf: cdf, table: t}); loaded {
		// Another goroutine published first; use its entry when it truly
		// matches (the tables are bitwise-identical either way).
		ent := e.(*tableCacheEntry)
		if ent.cdf.Equal(cdf) {
			return ent.table
		}
	}
	return t
}

// Estimate inverts the composite CDF: given a measured ones-fraction over
// `trials` trials, it returns the voltage estimate (Eq. 2 generalized),
// clamped to the invertible range spanned by the reference levels plus a few
// noise sigmas.
func (iv *Inverter) Estimate(onesFraction float64, trials int) float64 {
	if trials <= 0 {
		panic(fmt.Sprintf("itdr: non-positive trial count %d", trials))
	}
	// A count of 0 or trials carries only one-sided information; clamp the
	// fraction half a count inside so the inverse stays finite.
	eps := 0.5 / float64(trials)
	p := onesFraction
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	if iv.table != nil {
		return iv.table.Invert(p)
	}
	if iv.memo != nil {
		return iv.memo.invert(iv.cdf, p)
	}
	return iv.cdf.Invert(p)
}

// EstimateVoltage is the one-shot form of the inverse map, for callers that
// do not hold a reference set long enough to amortize an Inverter. The
// composite CDF is strictly monotone in v; bisect.
func (a APC) EstimateVoltage(onesFraction float64, trials int, refs []float64) float64 {
	return a.NewInverter(refs).Estimate(onesFraction, trials)
}

// LinearRegion returns the width of the voltage interval around the center
// of the reference span where the APC sensitivity stays within the given
// relative tolerance of its central value — the "linear region" the paper
// uses to compare single-reference APC against PDM (Fig. 4). The interval is
// scanned at the given voltage step.
func (a APC) LinearRegion(refs []float64, tol, step float64) float64 {
	var center float64
	for _, r := range refs {
		center += r
	}
	center /= float64(len(refs))
	s0 := a.Sensitivity(center, refs)
	if s0 == 0 {
		return 0
	}
	within := func(v float64) bool {
		s := a.Sensitivity(v, refs)
		return math.Abs(s-s0) <= tol*s0
	}
	var lo, hi float64
	for v := center; within(v); v -= step {
		lo = v
	}
	for v := center; within(v); v += step {
		hi = v
	}
	return hi - lo
}
