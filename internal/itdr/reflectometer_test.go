package itdr

import (
	"math"
	"testing"

	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

func testRig(t *testing.T, seed uint64, cfg Config) (*txline.Line, *Reflectometer) {
	t.Helper()
	stream := rng.New(seed)
	line := txline.New("L", txline.DefaultConfig(), stream.Child("line"))
	r, err := New(cfg, txline.DefaultProbe(), nil, stream.Child("itdr"))
	if err != nil {
		t.Fatal(err)
	}
	return line, r
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"clock":     func(c *Config) { c.SampleClockHz = 0 },
		"phase":     func(c *Config) { c.PhaseStepSec = -1 },
		"window":    func(c *Config) { c.WindowSec = 0 },
		"windowBig": func(c *Config) { c.WindowSec = 1 },
		"trials":    func(c *Config) { c.TrialsPerBin = 0 },
		"ratio":     func(c *Config) { c.ModFreqRatioNum = 0 },
		"noise":     func(c *Config) { c.ComparatorNoise = 0 },
		"density":   func(c *Config) { c.Trigger = TriggerFIFO; c.TriggerDensity = 0 },
	}
	for name, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.EquivalentRate(); math.Abs(got-1/11.16e-12)/got > 1e-12 {
		t.Errorf("equivalent rate = %v", got)
	}
	// Paper: >80 GHz equivalent rate and ~0.837 mm resolution at 15 cm/ns.
	if cfg.EquivalentRate() < 80e9 {
		t.Errorf("equivalent rate %v below the paper's 80 GHz", cfg.EquivalentRate())
	}
	res := cfg.SpatialResolution(1.5e8)
	if math.Abs(res-0.837e-3) > 0.01e-3 {
		t.Errorf("spatial resolution = %v m, want ~0.837 mm", res)
	}
	if cfg.Bins() != int(cfg.WindowSec/cfg.PhaseStepSec) {
		t.Errorf("Bins = %d", cfg.Bins())
	}
	if cfg.TotalTrials() != cfg.Bins()*cfg.TrialsPerBin {
		t.Errorf("TotalTrials = %d", cfg.TotalTrials())
	}
	// Paper: authentication and tamper detection complete within 50 µs.
	if d := cfg.MeasurementDuration(); d > 60e-6 {
		t.Errorf("measurement duration %v s exceeds the 50 µs envelope", d)
	}
	if got := cfg.ModFrequency(); math.Abs(got-156.25e6*26/25) > 1 {
		t.Errorf("modulation frequency = %v", got)
	}
}

func TestMeasureReconstructsReflection(t *testing.T) {
	line, r := testRig(t, 1, DefaultConfig())
	cfg := r.Config()
	truth := line.Reflect(r.Probe(), 0, 1, cfg.EquivalentRate(), cfg.Bins())
	m := r.Measure(line, txline.Environment{TempC: 23})
	if m.IIP.Len() != cfg.Bins() {
		t.Fatalf("IIP length %d, want %d", m.IIP.Len(), cfg.Bins())
	}
	// The reconstruction must correlate strongly with the physical truth.
	// The coupler's directivity leakage adds a known forward-wave artifact,
	// so compare after mean removal.
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(m.IIP), signal.RemoveMean(truth))
	if sim < 0.82 {
		t.Errorf("reconstruction correlates with truth at only %v", sim)
	}
}

func TestMeasureRepeatable(t *testing.T) {
	line, r := testRig(t, 2, DefaultConfig())
	env := txline.Environment{TempC: 23}
	a := r.Measure(line, env)
	b := r.Measure(line, env)
	// Raw single-shot measurements carry per-bin counting noise; the
	// fingerprint layer narrows this with matched-bandwidth smoothing and
	// enrollment averaging. Raw repeatability just needs to be strong.
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(a.IIP), signal.RemoveMean(b.IIP))
	if sim < 0.85 {
		t.Errorf("back-to-back measurements correlate at only %v", sim)
	}
}

func TestMeasureAccounting(t *testing.T) {
	line, r := testRig(t, 3, DefaultConfig())
	m := r.Measure(line, txline.Environment{TempC: 23})
	cfg := r.Config()
	if m.Trials != cfg.TotalTrials() {
		t.Errorf("Trials = %d, want %d", m.Trials, cfg.TotalTrials())
	}
	if m.CyclesUsed != m.Trials {
		t.Errorf("clock-triggered measurement used %d cycles for %d trials", m.CyclesUsed, m.Trials)
	}
	if math.Abs(m.Duration-float64(m.CyclesUsed)/cfg.SampleClockHz) > 1e-12 {
		t.Errorf("Duration inconsistent: %v", m.Duration)
	}
}

func TestFIFOTriggerStretchesMeasurement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trigger = TriggerFIFO
	line, r := testRig(t, 4, cfg)
	m := r.Measure(line, txline.Environment{TempC: 23})
	// With density 0.25 the cycle count should be ~4x the trial count.
	ratio := float64(m.CyclesUsed) / float64(m.Trials)
	if ratio < 3 || ratio > 6 {
		t.Errorf("cycles/trials = %v, want ~4 at density 0.25", ratio)
	}
	// But the IIP must still be valid.
	truth := line.Reflect(r.Probe(), 0, 1, cfg.EquivalentRate(), cfg.Bins())
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(m.IIP), signal.RemoveMean(truth))
	if sim < 0.82 {
		t.Errorf("FIFO-triggered reconstruction correlates at only %v", sim)
	}
}

func TestUntriggersdEdgesCancel(t *testing.T) {
	// Ablation A-TR: without the FIFO trigger, rising and falling launches
	// mix and their reflections cancel (§II-E).
	cfg := DefaultConfig()
	cfg.Trigger = TriggerNone
	line, r := testRig(t, 5, cfg)
	truth := line.Reflect(r.Probe(), 0, 1, cfg.EquivalentRate(), cfg.Bins())
	m := r.Measure(line, txline.Environment{TempC: 23})
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(m.IIP), signal.RemoveMean(truth))
	if math.Abs(sim) > 0.5 {
		t.Errorf("untriggered measurement still correlates with truth at %v", sim)
	}
}

func TestMeasureDetectsTerminationChange(t *testing.T) {
	line, r := testRig(t, 6, DefaultConfig())
	env := txline.Environment{TempC: 23}
	before := r.Measure(line, env)
	// A realistic chip swap (+8 Ω). A gross change would saturate the
	// AC-coupled front end and smear the difference across the window —
	// still detected, but no longer cleanly localized.
	line.SetTermination(line.Termination() + 8)
	after := r.Measure(line, env)
	diff := signal.Sub(after.IIP, before.IIP)
	idx, _ := signal.PeakIndex(diff)
	peakTime := diff.TimeOf(idx)
	rt := line.RoundTripTime()
	if peakTime < rt-0.2e-9 || peakTime > rt+0.5e-9 {
		t.Errorf("termination change detected at %v s, want near %v s", peakTime, rt)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrialsPerBin = 0
	if _, err := New(cfg, txline.DefaultProbe(), nil, rng.New(1)); err == nil {
		t.Error("expected error for invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(cfg, txline.DefaultProbe(), nil, rng.New(1))
}

func TestInjectOffsetDriftBiasesReconstruction(t *testing.T) {
	line, r := testRig(t, 30, DefaultConfig())
	env := txline.Environment{TempC: 23}
	before := r.Measure(line, env)
	// A drift near the modulator swing severely distorts reconstruction.
	r.InjectOffsetDrift(12 * DefaultConfig().ComparatorNoise)
	after := r.Measure(line, env)
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(before.IIP), signal.RemoveMean(after.IIP))
	if sim > 0.9 {
		t.Errorf("large uncalibrated drift should distort reconstruction, corr %v", sim)
	}
}

func TestPhaseJitterValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhaseJitterRMS = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative jitter should be rejected")
	}
}

func TestPhaseJitterDegradesGracefully(t *testing.T) {
	env := txline.Environment{TempC: 23}
	corr := func(jitter float64) float64 {
		cfg := DefaultConfig()
		cfg.PhaseJitterRMS = jitter
		line, r := testRig(t, 31, cfg)
		truth := line.Reflect(r.Probe(), 0, 1, cfg.EquivalentRate(), cfg.Bins())
		m := r.Measure(line, env)
		return signal.NormalizedInnerProduct(signal.RemoveMean(m.IIP), signal.RemoveMean(truth))
	}
	clean := corr(0)
	jittery := corr(100e-12)
	if jittery >= clean {
		t.Errorf("100 ps jitter (%v) should degrade vs ideal (%v)", jittery, clean)
	}
	if clean < 0.8 {
		t.Errorf("ideal-PLL correlation %v suspicious", clean)
	}
}

// TestMeasureParallelismInvariance is the engine's core contract: the IIP,
// trial count and cycle accounting of a measurement sequence are bit-identical
// at every Parallelism setting, because each ETS bin derives its randomness
// from its own labelled stream child rather than from execution order. Three
// consecutive measurements per instrument also cover the per-bin inverter
// cache in all three states (cold, first reuse, promoted table).
func TestMeasureParallelismInvariance(t *testing.T) {
	scenarios := map[string]struct {
		mutate func(*Config)
		env    txline.Environment
	}{
		"clock-room": {func(c *Config) {}, txline.RoomTemperature()},
		// Data-triggered probing under EMI exercises every per-bin draw
		// (trigger search, polarity, EMI phase, PLL jitter, noise).
		"fifo-emi": {func(c *Config) { c.Trigger = TriggerFIFO }, txline.EMI(0.8e-3, 333e6)},
	}
	for name, sc := range scenarios {
		t.Run(name, func(t *testing.T) {
			var base []Measurement
			var basePar int
			for _, par := range []int{1, 4, 0} { // 0 = GOMAXPROCS
				cfg := DefaultConfig()
				sc.mutate(&cfg)
				cfg.Parallelism = par
				line, r := testRig(t, 1234, cfg)
				ms := make([]Measurement, 3)
				for i := range ms {
					ms[i] = r.Measure(line, sc.env)
				}
				if base == nil {
					base, basePar = ms, par
					continue
				}
				for i := range ms {
					if ms[i].Trials != base[i].Trials || ms[i].CyclesUsed != base[i].CyclesUsed {
						t.Fatalf("measurement %d accounting differs: parallelism %d gave (%d, %d), %d gave (%d, %d)",
							i, par, ms[i].Trials, ms[i].CyclesUsed, basePar, base[i].Trials, base[i].CyclesUsed)
					}
					for j, v := range ms[i].IIP.Samples {
						if v != base[i].IIP.Samples[j] {
							t.Fatalf("measurement %d bin %d differs at parallelism %d: %v vs %v",
								i, j, par, v, base[i].IIP.Samples[j])
						}
					}
				}
			}
		})
	}
}
