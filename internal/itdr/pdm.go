package itdr

// gcd returns the greatest common divisor of a and b.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Coprime reports whether the modulation ratio numerator and denominator are
// relatively prime — the PDM validity condition from §II-C. When they are
// not, the reference voltage repeats after fewer than Den probes and the
// Vernier sweep collapses.
func Coprime(num, den int) bool { return gcd(num, den) == 1 }

// VernierLevelCount returns the number of distinct reference voltages a
// fixed phase bin sees across consecutive probes for the ratio num/den:
// den when coprime, den/gcd otherwise.
func VernierLevelCount(num, den int) int { return den / gcd(num, den) }

// VernierPhases returns the modulator phases (as fractions of the modulation
// period, in [0,1)) observed at a fixed offset t0 into the probe cycle, for
// `count` consecutive probes. With a coprime ratio the phases visit den
// equally spaced points — the discrete reference levels of Fig. 3.
func VernierPhases(cfg Config, t0 float64, count int) []float64 {
	fm := cfg.ModFrequency()
	period := 1 / cfg.SampleClockHz
	phases := make([]float64, count)
	for k := range phases {
		t := float64(k)*period + t0
		p := t * fm
		phases[k] = p - float64(int(p)) // fractional part; t >= 0 here
	}
	return phases
}
