package itdr

import "divot/internal/telemetry"

// Fault injection hook. The reflectometer exposes one seam through which a
// fault model (internal/fault) can distort a measurement while it is being
// acquired — at the same physical level where the real degradation would
// occur: comparator decisions, counter words, PLL phase, the environment the
// line is probed under. The healthy path is untouched when no injector is
// attached, and an attached injector that reports no active fault leaves the
// per-trial random draw sequence exactly as it was, so fault-free rounds stay
// bit-identical with and without the hook.

// StuckMode describes a comparator output stuck at a rail.
type StuckMode int

const (
	// StuckNone: the comparator operates normally.
	StuckNone StuckMode = iota
	// StuckLow: every decision reads 0 regardless of the inputs.
	StuckLow
	// StuckHigh: every decision reads 1 regardless of the inputs.
	StuckHigh
)

// BinFault is the per-ETS-bin component of a measurement fault.
type BinFault struct {
	// Dead marks the bin's acquisition slice dead: no trial ever fires, so
	// the ones-counter stays at zero (a pegged-low reconstruction).
	Dead bool
	// CounterXOR is XORed into the bin's ones-count after the trial loop —
	// a single-event upset in the counter register. The result is clamped
	// to the physical counter range [0, TrialsPerBin].
	CounterXOR uint32
}

// MeasurementFault is everything an injector may distort in one measurement.
// The zero value distorts nothing.
type MeasurementFault struct {
	// Stuck forces every comparator decision to a rail.
	Stuck StuckMode
	// ExtraOffset is an additional input-referred comparator offset in
	// volts that the APC inverse map does not know about.
	ExtraOffset float64
	// NoiseScale multiplies the comparator noise sigma; 0 means 1 (no
	// change). The inverse map keeps assuming the calibrated sigma.
	NoiseScale float64
	// ExtraJitterRMS adds (in quadrature) to the PLL phase jitter, in
	// seconds.
	ExtraJitterRMS float64
	// PhaseOffset shifts every ETS sampling instant by a fixed amount, in
	// seconds — a PLL phase step.
	PhaseOffset float64
	// Condition, when non-nil, transforms the environmental condition the
	// measurement runs under (temperature steps, EMI bursts).
	Condition func(ConditionTransform) ConditionTransform
	// Bin, when non-nil, returns the per-bin fault for ETS bin m. It is
	// called concurrently from the bin fan-out workers and must be a pure
	// function of m (and of state fixed before the measurement started).
	Bin func(m int) BinFault
}

// ConditionTransform is the subset of the environmental condition a fault may
// perturb. Keeping it here (instead of importing txline's Condition wholesale)
// pins down exactly what the injection seam can touch.
type ConditionTransform struct {
	// DeltaT is the temperature excursion from the calibration point in °C.
	DeltaT float64
	// EMIAmplitude is the injected EMI amplitude in volts at the detector.
	EMIAmplitude float64
}

// noiseScale resolves the 0-means-1 convention.
func (mf MeasurementFault) noiseScale() float64 {
	if mf.NoiseScale == 0 {
		return 1
	}
	return mf.NoiseScale
}

// distortsTrials reports whether the per-trial comparator path needs the
// distorted sampling call.
func (mf MeasurementFault) distortsTrials() bool {
	return mf.ExtraOffset != 0 || (mf.NoiseScale != 0 && mf.NoiseScale != 1)
}

// Injector is the seam a fault plane implements. BeginMeasurement is called
// once at the start of every measurement with the instrument's measurement
// sequence number (1 for the first measurement the instrument ever takes —
// enrollment measurements count). It returns the fault to apply and whether
// any fault is active; when ok is false the measurement proceeds exactly as
// the healthy path would.
type Injector interface {
	BeginMeasurement(seq uint64) (mf MeasurementFault, ok bool)
}

// SetInjector attaches (or, with nil, detaches) a fault injector to the
// instrument. One injector must not be shared between instruments that
// measure concurrently. An injector that is telemetry.Wirable (the fault
// plane) inherits the instrument's sink and labels, so fault-injection
// events flow through the same per-link channel as everything else —
// whichever order SetInjector and SetSink are called in.
func (r *Reflectometer) SetInjector(inj Injector) {
	r.inj = inj
	if w, ok := inj.(telemetry.Wirable); ok {
		w.WireSink(r.sink, r.link, r.side)
	}
}

// SetSink attaches (or, with nil, detaches) a telemetry sink; the instrument
// then emits one EventMeasurement per acquisition, labelled with the given
// link id and side. An attached Wirable injector is re-pointed at the same
// sink.
func (r *Reflectometer) SetSink(s telemetry.Sink, link, side string) {
	r.sink, r.link, r.side = s, link, side
	if w, ok := r.inj.(telemetry.Wirable); ok {
		w.WireSink(s, link, side)
	}
}

// Seq returns the number of measurements the instrument has taken so far.
// The next measurement carries sequence number Seq()+1 — the value fault
// schedules are written against.
func (r *Reflectometer) Seq() uint64 { return r.seq }
