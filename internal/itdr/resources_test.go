package itdr

import (
	"math"
	"testing"
)

func TestResourceModelMatchesPaper(t *testing.T) {
	// The paper's Vivado report: 71 registers, 124 LUTs, ~80 % counters,
	// ~0.8 % of the device overall (utilization table T-U).
	r := ResourceModel(DefaultConfig())
	if r.Registers < 60 || r.Registers > 85 {
		t.Errorf("Registers = %d, want ~71", r.Registers)
	}
	if r.LUTs < 105 || r.LUTs > 145 {
		t.Errorf("LUTs = %d, want ~124", r.LUTs)
	}
	if share := r.CounterShare(); math.Abs(share-0.8) > 0.1 {
		t.Errorf("counter share = %v, want ~0.8", share)
	}
}

func TestResourceModelScalesWithTrials(t *testing.T) {
	small := DefaultConfig()
	big := DefaultConfig()
	big.TrialsPerBin = small.TrialsPerBin * 256
	rs := ResourceModel(small)
	rb := ResourceModel(big)
	if rb.Registers <= rs.Registers {
		t.Error("wider counters should cost more registers")
	}
}

func TestFleetUtilizationAmortizesSharedLogic(t *testing.T) {
	cfg := DefaultConfig()
	one := FleetUtilization(cfg, 1)
	ten := FleetUtilization(cfg, 10)
	per := ResourceModel(cfg)
	// Marginal cost of going from 1 to 10 instances is exactly 9 instances:
	// the PLL and modulator are shared.
	if got := ten.Registers - one.Registers; got != 9*per.Registers {
		t.Errorf("marginal register cost = %d, want %d", got, 9*per.Registers)
	}
	if got := ten.LUTs - one.LUTs; got != 9*per.LUTs {
		t.Errorf("marginal LUT cost = %d, want %d", got, 9*per.LUTs)
	}
	zero := FleetUtilization(cfg, 0)
	if zero.Registers != SharedOverhead().Registers {
		t.Errorf("empty fleet should cost only the shared overhead")
	}
}

func TestDeviceFractionSmall(t *testing.T) {
	r := ResourceModel(DefaultConfig())
	regFrac, lutFrac := r.DeviceFraction()
	if regFrac > 0.01 || lutFrac > 0.01 {
		t.Errorf("device fractions %v, %v should be below 1%%", regFrac, lutFrac)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 8575: 14}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFleetUtilizationPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FleetUtilization(DefaultConfig(), -1)
}

func TestCounterShareZeroLUTs(t *testing.T) {
	if (Resources{}).CounterShare() != 0 {
		t.Error("zero resources should have zero counter share")
	}
}

func TestTriggerModeString(t *testing.T) {
	if TriggerClock.String() != "clock" || TriggerFIFO.String() != "fifo" ||
		TriggerNone.String() != "none" {
		t.Error("unexpected trigger mode names")
	}
	if TriggerMode(9).String() == "" {
		t.Error("unknown mode should still format")
	}
}
