package itdr

import (
	"testing"

	"divot/internal/rng"
	"divot/internal/txline"
)

// TestMeasureIntoMatchesMeasure proves the arena path is bit-identical to
// the allocating path across a sequence of measurements: two identically
// seeded rigs must reconstruct the same IIPs whether or not they recycle an
// arena, at sequential and parallel worker counts.
func TestMeasureIntoMatchesMeasure(t *testing.T) {
	for _, par := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Parallelism = par
		lineA, ra := testRig(t, 31, cfg)
		lineB, rb := testRig(t, 31, cfg)
		env := txline.RoomTemperature()
		arena := NewArena()
		for round := 0; round < 3; round++ {
			want := ra.Measure(lineA, env)
			got := rb.MeasureInto(arena, lineB, env)
			if want.Trials != got.Trials || want.CyclesUsed != got.CyclesUsed {
				t.Fatalf("par=%d round %d: accounting mismatch", par, round)
			}
			for i, v := range want.IIP.Samples {
				if got.IIP.Samples[i] != v {
					t.Fatalf("par=%d round %d bin %d: MeasureInto %v != Measure %v",
						par, round, i, got.IIP.Samples[i], v)
				}
			}
			for i, s := range want.Saturated {
				if got.Saturated[i] != s {
					t.Fatalf("par=%d round %d bin %d: saturation mismatch", par, round, i)
				}
			}
		}
	}
}

// TestMeasureIntoAllocationFree is the arena's reason to exist: once the
// arena and the per-bin inverter cache are warm, a sequential measurement
// must not allocate at all.
func TestMeasureIntoAllocationFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	line, r := testRig(t, 7, cfg)
	env := txline.RoomTemperature()
	arena := NewArena()
	// Warm-up: first measurement sizes the arena and builds the inverters,
	// second promotes them to tabulated CDFs.
	r.MeasureInto(arena, line, env)
	r.MeasureInto(arena, line, env)
	allocs := testing.AllocsPerRun(10, func() {
		r.MeasureInto(arena, line, env)
	})
	if allocs != 0 {
		t.Fatalf("warm MeasureInto allocates %v times per run, want 0", allocs)
	}
}

// TestMeasureDetachedFromPool proves Measure's result survives the arena
// being reused: retained measurements (the calibration-averaging pattern)
// must not be overwritten by later measurements.
func TestMeasureDetachedFromPool(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	line, r := testRig(t, 11, cfg)
	env := txline.RoomTemperature()
	first := r.Measure(line, env)
	snapshot := append([]float64(nil), first.IIP.Samples...)
	for i := 0; i < 3; i++ {
		r.Measure(line, env)
	}
	for i, v := range snapshot {
		if first.IIP.Samples[i] != v {
			t.Fatalf("bin %d of a retained measurement changed: %v -> %v", i, v, first.IIP.Samples[i])
		}
	}
}

// TestSharedInverseTableReuse proves two instruments of the same
// configuration share promoted tables (the fleet-memory bound), and that a
// differently configured instrument does not.
func TestSharedInverseTableReuse(t *testing.T) {
	cfg := DefaultConfig()
	apc := NewAPC(cfg.ComparatorNoise, cfg.ComparatorOffset)
	refs := []float64{-0.01, -0.005, 0, 0.005, 0.01}
	a := apc.NewInverter(refs)
	b := apc.NewInverter(refs)
	a.Promote()
	b.Promote()
	if a.table != b.table {
		t.Fatal("identically configured inverters did not share a promoted table")
	}
	other := NewAPC(cfg.ComparatorNoise*2, cfg.ComparatorOffset).NewInverter(refs)
	other.Promote()
	if other.table == a.table {
		t.Fatal("differently configured inverters share a table")
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if a.Estimate(p, 25) != b.Estimate(p, 25) {
			t.Fatalf("shared-table estimates diverge at p=%v", p)
		}
	}
}

// TestArenaServesMultipleInstruments proves a pooled arena can hop between
// reflectometers without contaminating results: interleaving two instruments
// through one arena matches running each with its own.
func TestArenaServesMultipleInstruments(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	mk := func() (*txline.Line, *Reflectometer, *txline.Line, *Reflectometer) {
		s := rng.New(77)
		lineA := txline.New("A", txline.DefaultConfig(), s.Child("line-a"))
		lineB := txline.New("B", txline.DefaultConfig(), s.Child("line-b"))
		ra := MustNew(cfg, txline.DefaultProbe(), nil, s.Child("itdr-a"))
		rb := MustNew(cfg, txline.DefaultProbe(), nil, s.Child("itdr-b"))
		return lineA, ra, lineB, rb
	}
	env := txline.RoomTemperature()

	la1, ra1, lb1, rb1 := mk()
	shared := NewArena()
	var interleaved [][]float64
	for i := 0; i < 2; i++ {
		ma := ra1.MeasureInto(shared, la1, env)
		interleaved = append(interleaved, append([]float64(nil), ma.IIP.Samples...))
		mb := rb1.MeasureInto(shared, lb1, env)
		interleaved = append(interleaved, append([]float64(nil), mb.IIP.Samples...))
	}

	la2, ra2, lb2, rb2 := mk()
	arenaA, arenaB := NewArena(), NewArena()
	var separate [][]float64
	for i := 0; i < 2; i++ {
		ma := ra2.MeasureInto(arenaA, la2, env)
		separate = append(separate, append([]float64(nil), ma.IIP.Samples...))
		mb := rb2.MeasureInto(arenaB, lb2, env)
		separate = append(separate, append([]float64(nil), mb.IIP.Samples...))
	}

	for k := range interleaved {
		for i := range interleaved[k] {
			if interleaved[k][i] != separate[k][i] {
				t.Fatalf("measurement %d bin %d: shared-arena %v != private-arena %v",
					k, i, interleaved[k][i], separate[k][i])
			}
		}
	}
}
