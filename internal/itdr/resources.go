package itdr

import "fmt"

// Resources is the FPGA utilization model for the iTDR digital logic. It is
// an analytic model calibrated against the paper's Vivado report for the
// xczu7ev-ffvc1156-2-e prototype: 71 registers and 124 LUTs, with roughly
// 80 % of the logic spent on counters (§IV-A).
type Resources struct {
	Registers int
	LUTs      int
	// CounterRegisters/CounterLUTs are the subsets consumed by the trial
	// and ones counters plus the phase-bin index.
	CounterRegisters int
	CounterLUTs      int
}

// ResourceModel computes the utilization for one iTDR instance.
//
// Breakdown (per instance):
//   - ones counter and trial counter, each wide enough to count
//     TrialsPerBin·Bins trials;
//   - phase-bin counter wide enough to index Bins;
//   - PLL phase-shift step counter wide enough to count the phase steps in
//     one clock period;
//   - two 4-bit FIFO pointers for the result buffer;
//   - 3-bit trigger shift register + 5-bit control FSM + 2 CDC
//     synchronizer registers + 5 configuration/handshake registers.
//
// LUT cost: carry/increment plus terminal-count compare logic ≈ 1.75 LUTs
// per counter bit, and ~25 LUTs of control, trigger and handshake logic.
// With the default configuration this lands at 70 registers / 121 LUTs with
// ~80 % of LUTs in counters — the paper reports 71 / 124 / "80 % counters".
//
// The PLL (phase stepper) and the PDM modulator pin are *shared* across all
// iTDRs on a chip (§II-D, §II-C), so they are not part of the per-instance
// cost; SharedOverhead reports them separately.
func ResourceModel(cfg Config) Resources {
	trialBits := bitsFor(cfg.TotalTrials())
	binBits := bitsFor(cfg.Bins())
	phaseBits := bitsFor(int(1 / (cfg.SampleClockHz * cfg.PhaseStepSec)))
	const fifoPtrBits = 4
	counterRegs := 2*trialBits + binBits + phaseBits + 2*fifoPtrBits
	counterLUTs := counterRegs * 7 / 4
	const (
		triggerRegs = 3
		fsmRegs     = 5
		cdcRegs     = 2
		cfgRegs     = 5
		ctrlLUTs    = 25
	)
	return Resources{
		Registers:        counterRegs + triggerRegs + fsmRegs + cdcRegs + cfgRegs,
		LUTs:             counterLUTs + ctrlLUTs,
		CounterRegisters: counterRegs,
		CounterLUTs:      counterLUTs,
	}
}

// bitsFor returns the number of bits needed to count up to n inclusive.
func bitsFor(n int) int {
	bits := 0
	for v := n; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// SharedOverhead reports the chip-level resources shared by every iTDR:
// one PLL with dynamic phase shift and one digital output pin driving the RC
// modulator network, expressed as register/LUT equivalents of the wrapper
// logic around the hard PLL macro.
func SharedOverhead() Resources {
	return Resources{Registers: 24, LUTs: 18}
}

// FleetUtilization returns the total register/LUT cost of protecting n buses
// with n iTDR instances plus the single shared PLL/modulator.
func FleetUtilization(cfg Config, n int) Resources {
	if n < 0 {
		panic(fmt.Sprintf("itdr: negative fleet size %d", n))
	}
	per := ResourceModel(cfg)
	shared := SharedOverhead()
	return Resources{
		Registers:        shared.Registers + n*per.Registers,
		LUTs:             shared.LUTs + n*per.LUTs,
		CounterRegisters: n * per.CounterRegisters,
		CounterLUTs:      n * per.CounterLUTs,
	}
}

// MultiplexedUtilization returns the cost of protecting n buses with ONE
// time-shared iTDR datapath (§V: "over 90% of the hardware in a DIVOT
// detector can be shared/multiplexed by many detectors on a chip"): the
// counter bank, FSM and reconstruction logic are instantiated once; each
// additional bus adds only its analog front-end selection — a comparator
// enable, a coupler mux leg, and a few control registers. The price is
// monitoring cadence: buses are scanned round-robin, so the worst-case
// alert latency grows n-fold.
func MultiplexedUtilization(cfg Config, n int) Resources {
	if n < 0 {
		panic(fmt.Sprintf("itdr: negative fleet size %d", n))
	}
	shared := SharedOverhead()
	one := ResourceModel(cfg)
	const (
		perBusRegs = 4 // channel-select, enable, status
		perBusLUTs = 3 // mux legs and decode
	)
	return Resources{
		Registers:        shared.Registers + one.Registers + n*perBusRegs,
		LUTs:             shared.LUTs + one.LUTs + n*perBusLUTs,
		CounterRegisters: one.CounterRegisters,
		CounterLUTs:      one.CounterLUTs,
	}
}

// DeviceFraction returns the utilization as a fraction of the paper's
// xczu7ev device (230,400 LUTs and 460,800 registers).
func (r Resources) DeviceFraction() (regFrac, lutFrac float64) {
	const (
		xczu7evRegs = 460800
		xczu7evLUTs = 230400
	)
	return float64(r.Registers) / xczu7evRegs, float64(r.LUTs) / xczu7evLUTs
}

// CounterShare returns the fraction of LUTs spent on counters.
func (r Resources) CounterShare() float64 {
	if r.LUTs == 0 {
		return 0
	}
	return float64(r.CounterLUTs) / float64(r.LUTs)
}
