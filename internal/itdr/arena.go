package itdr

import (
	"sync"

	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// Arena is the reusable working memory of one measurement: the reflection
// synthesis scratch, the coupler output, the reconstructed IIP, the per-bin
// accounting slices, and the per-worker reference scratch and random
// streams. MeasureInto recycles it across measurements so the steady-state
// monitoring loop allocates nothing; callers without a natural owner go
// through Measure, which borrows an arena from a process-wide pool.
//
// Ownership rules: an arena serves one measurement at a time (the per-worker
// slots inside it are the only concurrency), and the Measurement returned by
// MeasureInto aliases the arena's buffers — it is valid until the next
// MeasureInto on the same arena. Arenas are instrument-agnostic: the same
// arena may serve different Reflectometers on successive measurements, since
// every buffer is resized and every stream reseeded before use.
type Arena struct {
	reflect txline.ReflectScratch
	seen    *signal.Waveform

	out       *signal.Waveform
	binCycles []int
	saturated []bool

	// scratch and binRN hold one reference-level buffer and one reusable
	// bin stream per worker; mStream is the per-measurement parent those
	// bin streams are re-derived from.
	scratch [][]float64
	binRN   []*rng.Stream
	mStream *rng.Stream

	ctx binCtx
}

// NewArena returns an empty arena; buffers are sized lazily on first use.
func NewArena() *Arena { return &Arena{} }

// prepare sizes the arena for a measurement of `bins` bins on `workers`
// workers with `trials` reference levels per bin.
func (a *Arena) prepare(rate float64, bins, workers, trials int) {
	a.out = signal.Reuse(a.out, rate, bins)
	if cap(a.binCycles) < bins {
		a.binCycles = make([]int, bins)
	}
	a.binCycles = a.binCycles[:bins]
	if cap(a.saturated) < bins {
		a.saturated = make([]bool, bins)
	}
	a.saturated = a.saturated[:bins]
	if len(a.scratch) < workers {
		a.scratch = append(a.scratch, make([][]float64, workers-len(a.scratch))...)
	}
	for w := 0; w < workers; w++ {
		if cap(a.scratch[w]) < trials {
			a.scratch[w] = make([]float64, trials)
		}
		a.scratch[w] = a.scratch[w][:trials]
	}
	for len(a.binRN) < workers {
		a.binRN = append(a.binRN, rng.New(0))
	}
	if a.mStream == nil {
		a.mStream = rng.New(0)
	}
}

// arenaPool backs Measure for callers that do not own an arena (calibration,
// spot checks, tests). Measurements returned by Measure are detached copies,
// so pooled arenas never leak aliased memory.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}
