package itdr

import (
	"math"
	"sort"
	"testing"
)

func TestCoprime(t *testing.T) {
	cases := []struct {
		num, den int
		want     bool
	}{
		{6, 5, true},
		{5, 6, true},
		{4, 6, false},
		{1, 1, true},
		{10, 5, false},
		{9, 4, true},
	}
	for _, c := range cases {
		if got := Coprime(c.num, c.den); got != c.want {
			t.Errorf("Coprime(%d, %d) = %v, want %v", c.num, c.den, got, c.want)
		}
	}
}

func TestVernierLevelCount(t *testing.T) {
	if got := VernierLevelCount(6, 5); got != 5 {
		t.Errorf("6/5 levels = %d, want 5", got)
	}
	if got := VernierLevelCount(4, 6); got != 3 {
		t.Errorf("4/6 levels = %d, want 3 (collapsed)", got)
	}
	if got := VernierLevelCount(5, 5); got != 1 {
		t.Errorf("5/5 levels = %d, want 1 (fully collapsed)", got)
	}
}

func TestVernierPhasesCoprimeVisitAllLevels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModFreqRatioNum, cfg.ModFreqRatioDen = 6, 5 // the paper's Fig. 3 example
	phases := VernierPhases(cfg, 0.3e-9, 5)
	// Across 5 consecutive probes the fractional phases must be 5 distinct
	// values, equally spaced by 1/5.
	sorted := append([]float64(nil), phases...)
	sort.Float64s(sorted)
	for i := 1; i < len(sorted); i++ {
		gap := sorted[i] - sorted[i-1]
		if math.Abs(gap-0.2) > 1e-9 {
			t.Fatalf("phase gap %d = %v, want 0.2 (phases %v)", i, gap, sorted)
		}
	}
}

func TestVernierPhasesNonCoprimeCollapse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModFreqRatioNum = 5
	cfg.ModFreqRatioDen = 5 // f_m = f_s: the paper's failure case
	phases := VernierPhases(cfg, 0.3e-9, 5)
	for _, p := range phases[1:] {
		if math.Abs(p-phases[0]) > 1e-9 {
			t.Fatalf("f_m = f_s should repeat the same phase, got %v", phases)
		}
	}
}

func TestVernierPhasesPeriodicity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModFreqRatioNum, cfg.ModFreqRatioDen = 6, 5
	phases := VernierPhases(cfg, 1e-9, 10)
	// With den=5, probe k and probe k+5 see the same phase.
	for k := 0; k < 5; k++ {
		if math.Abs(phases[k]-phases[k+5]) > 1e-9 {
			t.Fatalf("phase not periodic with den: %v vs %v", phases[k], phases[k+5])
		}
	}
}
