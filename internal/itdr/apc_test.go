package itdr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAPCProbabilityIsGaussianCDFForSingleRef(t *testing.T) {
	a := APC{NoiseSigma: 1e-3}
	refs := []float64{0}
	if got := a.Probability(0, refs); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P at ref = %v, want 0.5", got)
	}
	if got := a.Probability(1e-3, refs); math.Abs(got-0.8413447460685429) > 1e-9 {
		t.Errorf("P at +1σ = %v", got)
	}
}

func TestAPCProbabilityMonotone(t *testing.T) {
	a := APC{NoiseSigma: 1e-3}
	refs := []float64{-2e-3, 0, 2e-3}
	f := func(v1, v2 float64) bool {
		if math.IsNaN(v1) || math.IsNaN(v2) || math.IsInf(v1, 0) || math.IsInf(v2, 0) {
			return true
		}
		// Scale raw quick values into a meaningful voltage range.
		v1 = math.Mod(v1, 1) * 10e-3
		v2 = math.Mod(v2, 1) * 10e-3
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return a.Probability(v1, refs) <= a.Probability(v2, refs)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAPCProbabilityLimits(t *testing.T) {
	a := APC{NoiseSigma: 1e-3}
	refs := []float64{-1e-3, 1e-3}
	if got := a.Probability(-1, refs); got > 1e-9 {
		t.Errorf("P far below refs = %v, want ~0", got)
	}
	if got := a.Probability(1, refs); got < 1-1e-9 {
		t.Errorf("P far above refs = %v, want ~1", got)
	}
}

func TestEstimateVoltageInvertsProbability(t *testing.T) {
	a := APC{NoiseSigma: 1e-3}
	refs := []float64{-3e-3, -1e-3, 1e-3, 3e-3}
	for _, v := range []float64{-2.5e-3, -1e-3, 0, 0.7e-3, 2.9e-3} {
		p := a.Probability(v, refs)
		got := a.EstimateVoltage(p, 1<<20, refs)
		if math.Abs(got-v) > 1e-6 {
			t.Errorf("EstimateVoltage(P(%v)) = %v", v, got)
		}
	}
}

func TestEstimateVoltageWithOffset(t *testing.T) {
	a := APC{NoiseSigma: 1e-3, Offset: 0.5e-3}
	refs := []float64{0}
	v := 0.3e-3
	p := a.Probability(v, refs)
	if got := a.EstimateVoltage(p, 1<<20, refs); math.Abs(got-v) > 1e-6 {
		t.Errorf("offset-aware inversion = %v, want %v", got, v)
	}
}

func TestEstimateVoltageClampsExtremes(t *testing.T) {
	a := APC{NoiseSigma: 1e-3}
	refs := []float64{0}
	vLo := a.EstimateVoltage(0, 100, refs)
	vHi := a.EstimateVoltage(1, 100, refs)
	if !(vLo < 0 && vHi > 0) {
		t.Errorf("extreme estimates %v, %v should straddle the reference", vLo, vHi)
	}
	if math.IsInf(vLo, 0) || math.IsInf(vHi, 0) {
		t.Error("estimates must stay finite at p=0 and p=1")
	}
}

func TestEstimateVoltagePanicsOnBadTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	APC{NoiseSigma: 1}.EstimateVoltage(0.5, 0, []float64{0})
}

func TestPDMWidensLinearRegion(t *testing.T) {
	// The central claim of Fig. 4: multiple reference levels widen the
	// linear region compared with a single reference.
	sigma := 1e-3
	a := APC{NoiseSigma: sigma}
	single := a.LinearRegion([]float64{0}, 0.25, sigma/20)
	multi := a.LinearRegion([]float64{-3e-3, -1.5e-3, 0, 1.5e-3, 3e-3}, 0.25, sigma/20)
	if multi <= single {
		t.Errorf("PDM linear region %v should exceed single-reference %v", multi, single)
	}
	if multi < 3*single {
		t.Errorf("PDM widening only %.1fx; expected a substantial gain", multi/single)
	}
}

func TestSensitivityIsDerivativeOfProbability(t *testing.T) {
	a := APC{NoiseSigma: 1e-3}
	refs := []float64{-1e-3, 1e-3}
	h := 1e-8
	for _, v := range []float64{-1.5e-3, 0, 0.8e-3} {
		numeric := (a.Probability(v+h, refs) - a.Probability(v-h, refs)) / (2 * h)
		analytic := a.Sensitivity(v, refs)
		if math.Abs(numeric-analytic) > 1e-3*math.Abs(analytic)+1e-6 {
			t.Errorf("sensitivity at %v: numeric %v vs analytic %v", v, numeric, analytic)
		}
	}
}

func TestProbabilityPanicsWithoutRefs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	APC{NoiseSigma: 1}.Probability(0, nil)
}

func TestInverterMatches(t *testing.T) {
	apc := APC{NoiseSigma: 1e-3}
	refs := []float64{-1e-3, 0, 1e-3}
	iv := apc.NewInverter(refs)
	if !iv.Matches(refs) {
		t.Error("inverter must match the refs it was built for")
	}
	if !iv.Matches([]float64{-1e-3, 0, 1e-3}) {
		t.Error("Matches must compare values, not slice identity")
	}
	if iv.Matches(refs[:2]) {
		t.Error("matched a shorter reference set")
	}
	if iv.Matches([]float64{-1e-3, 0, 2e-3}) {
		t.Error("matched a different reference set")
	}
}

func TestInverterPromoteKeepsEstimates(t *testing.T) {
	// Promotion swaps bisection for table interpolation; over the clamped
	// input range the two must agree to well under the counting noise a
	// 25-trial bin carries (~2% of a sigma), or the per-bin cache would
	// change measurements when it kicks in.
	apc := APC{NoiseSigma: 1e-3}
	refs := []float64{-2e-3, -1e-3, 0, 1e-3, 2e-3}
	exact := apc.NewInverter(refs)
	tabled := apc.NewInverter(refs)
	tabled.Promote()
	if !tabled.Promoted() || exact.Promoted() {
		t.Fatal("Promoted flags wrong")
	}
	tabled.Promote() // idempotent
	const trials = 25
	for k := 0; k <= trials; k++ {
		p := float64(k) / trials
		a, b := exact.Estimate(p, trials), tabled.Estimate(p, trials)
		if math.Abs(a-b) > 2e-5 {
			t.Errorf("p=%v: bisection %v vs table %v", p, a, b)
		}
	}
}

func TestEstimateVoltageMatchesInverter(t *testing.T) {
	apc := APC{NoiseSigma: 0.4e-3}
	refs := []float64{-1e-3, 0.5e-3, 1.5e-3}
	iv := apc.NewInverter(refs)
	for _, p := range []float64{0, 0.1, 0.48, 0.9, 1} {
		if got, want := apc.EstimateVoltage(p, 25, refs), iv.Estimate(p, 25); got != want {
			t.Errorf("p=%v: EstimateVoltage %v, Inverter.Estimate %v", p, got, want)
		}
	}
}

func TestNewAPCMatchesLiteral(t *testing.T) {
	// NewAPC hoists the Gaussian; a literal APC builds it per call. Both
	// forms must price probabilities identically.
	hoisted := NewAPC(0.4e-3, 0.1e-3)
	literal := APC{NoiseSigma: 0.4e-3, Offset: 0.1e-3}
	refs := []float64{-0.5e-3, 0, 0.5e-3}
	for _, d := range []float64{-2e-3, -1e-4, 0, 3e-4, 2e-3} {
		if got, want := hoisted.Probability(d, refs), literal.Probability(d, refs); got != want {
			t.Errorf("delta %v: hoisted %v, literal %v", d, got, want)
		}
		if got, want := hoisted.Sensitivity(d, refs), literal.Sensitivity(d, refs); got != want {
			t.Errorf("sensitivity at %v: hoisted %v, literal %v", d, got, want)
		}
	}
}
