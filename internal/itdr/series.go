package itdr

import (
	"sync"

	"divot/internal/pool"
	"divot/internal/txline"
)

// MeasureSeries acquires n consecutive measurements of line under env and
// streams them, in measurement order, to consume(i, m) for i = 0..n-1. Each
// Measurement aliases working memory and is valid only for the duration of
// its callback (like MeasureInto); consume runs serially, never concurrently
// with itself.
//
// The series is bit-identical to n sequential MeasureInto calls — same
// waveforms, same telemetry events in the same order, same instrument state
// afterwards — at any worker count, the PR-1 contract. That holds because
// every per-measurement quantity derives from the measurement's sequence
// number, not from scheduling: environment conditions are pre-sampled from
// envRN in sequence order, and each measurement reseeds its sub-streams from
// ("measurement", seq).
//
// Workers (≤ 0 means GOMAXPROCS) bounds the fan-out; memory stays at
// O(workers) arenas regardless of n. Intra-measurement bin fan-out is
// governed separately by Config.Parallelism, so a fleet scheduler can split
// its core budget across the two levels. The fan-out engages only for
// clock-triggered instruments on their config modulator with no fault
// injector — cold enrollment — because only there is the instrument state
// (forward edge, per-bin inverse maps) frozen after the first measurement;
// everything else runs the plain sequential loop.
func (r *Reflectometer) MeasureSeries(a *Arena, line *txline.Line, env txline.Environment, n, workers int, consume func(i int, m Measurement)) {
	if n <= 0 {
		return
	}
	workers = pool.Workers(workers)
	if workers > n-1 {
		workers = n - 1 // measurement 0 always runs inline
	}
	if workers <= 1 || r.wu == nil || r.inj != nil {
		for i := 0; i < n; i++ {
			consume(i, r.MeasureInto(a, line, env))
		}
		return
	}

	// Pre-sample the environment in sequence order. Nothing else consumes
	// envRN during a measurement (sub-streams are derived by pure child
	// reseeding), so drawing the conditions up front is the exact sequence
	// the interleaved sequential path draws.
	conds := make([]txline.Condition, n)
	for i := range conds {
		conds[i] = env.Sample(r.envRN)
	}
	seq0 := r.seq
	r.seq += uint64(n)

	// The leader runs inline: it builds the per-bin inverse maps exactly as
	// the first sequential measurement would, then promotes every bin — the
	// same promotion the second sequential measurement performs — so the
	// fanned measurements see frozen, promoted instrument state.
	consume(0, r.measureAt(a, line, conds[0], seq0+1, false))
	for _, inv := range r.binInv {
		if inv != nil {
			inv.Promote()
		}
	}

	arenas := make([]*Arena, workers)
	arenas[0] = a
	for w := 1; w < workers; w++ {
		arenas[w] = arenaPool.Get().(*Arena)
	}
	defer func() {
		for w := 1; w < workers; w++ {
			arenaPool.Put(arenas[w])
		}
	}()

	// Ordered hand-off: workers measure concurrently into their own arenas,
	// but telemetry emission and consume happen strictly in measurement
	// order, one at a time. Panics — from a measurement or from consume —
	// are parked rather than propagated through pool.Run: a propagated panic
	// would make the pool drop unclaimed tasks and strand later workers
	// waiting for turns that never come. The first panic wins, later
	// consumes are skipped (the sequential path would not have reached them
	// either), and it is re-raised once every worker has drained.
	var (
		mu        sync.Mutex
		turn      = sync.NewCond(&mu)
		next      = 1
		seriesErr any
	)
	park := func(p any) {
		mu.Lock()
		if seriesErr == nil {
			seriesErr = p
		}
		mu.Unlock()
	}
	pool.Run(n-1, workers, func(worker, idx int) {
		i := idx + 1
		seq := seq0 + uint64(i) + 1
		var m Measurement
		ok := false
		func() {
			defer func() {
				if p := recover(); p != nil {
					park(p)
				}
			}()
			m = r.measureAt(arenas[worker], line, conds[i], seq, true)
			ok = true
		}()
		mu.Lock()
		for next != i {
			turn.Wait()
		}
		skip := seriesErr != nil
		mu.Unlock()
		defer func() {
			if p := recover(); p != nil {
				park(p)
			}
			mu.Lock()
			next++
			turn.Broadcast()
			mu.Unlock()
		}()
		if ok && !skip {
			r.emitMeasurement(seq, m.Saturated)
			consume(i, m)
		}
	})
	if seriesErr != nil {
		panic(seriesErr)
	}
}
