package itdr

import (
	"math"
	"testing"

	"divot/internal/analog"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/telemetry"
	"divot/internal/txline"
)

// testRigExplicitMod is testRig handing New the very modulator the config
// would build implicitly, which disables the shared warmup.
func testRigExplicitMod(t *testing.T, seed uint64, cfg Config) (*txline.Line, *Reflectometer) {
	t.Helper()
	stream := rng.New(seed)
	line := txline.New("L", txline.DefaultConfig(), stream.Child("line"))
	mod := analog.NewTriangleModulator(cfg.ModFrequency(), cfg.ModAmplitude, cfg.ModTauRatio)
	r, err := New(cfg, txline.DefaultProbe(), mod, stream.Child("itdr"))
	if err != nil {
		t.Fatal(err)
	}
	return line, r
}

// seriesLog collects telemetry events in emission order.
type seriesLog struct{ events []telemetry.Event }

func (l *seriesLog) Emit(e telemetry.Event) { l.events = append(l.events, e) }

// runSequential is the reference: n MeasureInto calls, results detached.
func runSequential(r *Reflectometer, line *txline.Line, env txline.Environment, n int) []*signal.Waveform {
	a := NewArena()
	out := make([]*signal.Waveform, n)
	for i := 0; i < n; i++ {
		out[i] = r.MeasureInto(a, line, env).IIP.Clone()
	}
	return out
}

// TestMeasureSeriesMatchesSequential proves the series fan-out is
// bit-identical to sequential acquisition at any worker count — same IIPs,
// same telemetry events in the same order, same instrument state afterwards.
func TestMeasureSeriesMatchesSequential(t *testing.T) {
	const n = 9
	for _, workers := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Parallelism = 1
		lineA, ra := testRig(t, 17, cfg)
		lineB, rb := testRig(t, 17, cfg)
		var logA, logB seriesLog
		ra.SetSink(&logA, "bus", "cpu")
		rb.SetSink(&logB, "bus", "cpu")
		env := txline.RoomTemperature()

		want := runSequential(ra, lineA, env, n)
		got := make([]*signal.Waveform, 0, n)
		rb.MeasureSeries(NewArena(), lineB, env, n, workers, func(i int, m Measurement) {
			if i != len(got) {
				t.Fatalf("workers=%d: consume out of order: got index %d want %d", workers, i, len(got))
			}
			got = append(got, m.IIP.Clone())
		})
		if len(got) != n {
			t.Fatalf("workers=%d: %d measurements, want %d", workers, len(got), n)
		}
		for i := range want {
			for b := range want[i].Samples {
				if math.Float64bits(got[i].Samples[b]) != math.Float64bits(want[i].Samples[b]) {
					t.Fatalf("workers=%d: measurement %d bin %d differs", workers, i, b)
				}
			}
		}
		if len(logA.events) != len(logB.events) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(logB.events), len(logA.events))
		}
		for i := range logA.events {
			if logA.events[i] != logB.events[i] {
				t.Fatalf("workers=%d: event %d differs: %+v != %+v",
					workers, i, logB.events[i], logA.events[i])
			}
		}

		// Instrument state (seq, inverter cache) must come out identical:
		// the next measurement on each rig has to agree bit for bit.
		wNext := ra.Measure(lineA, env)
		gNext := rb.Measure(lineB, env)
		for b := range wNext.IIP.Samples {
			if math.Float64bits(gNext.IIP.Samples[b]) != math.Float64bits(wNext.IIP.Samples[b]) {
				t.Fatalf("workers=%d: post-series measurement differs at bin %d", workers, b)
			}
		}
	}
}

// TestMeasureSeriesFallback covers the ineligible cases (data-triggered
// probing has no frozen schedule): the series must silently run the
// sequential loop and stay identical.
func TestMeasureSeriesFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	cfg.Trigger = TriggerFIFO
	lineA, ra := testRig(t, 23, cfg)
	lineB, rb := testRig(t, 23, cfg)
	env := txline.RoomTemperature()
	if ra.wu != nil {
		t.Fatal("FIFO-triggered rig should have no warmup")
	}
	const n = 5
	want := runSequential(ra, lineA, env, n)
	i := 0
	rb.MeasureSeries(NewArena(), lineB, env, n, 8, func(idx int, m Measurement) {
		for b := range want[idx].Samples {
			if math.Float64bits(m.IIP.Samples[b]) != math.Float64bits(want[idx].Samples[b]) {
				t.Fatalf("measurement %d bin %d differs", idx, b)
			}
		}
		i++
	})
	if i != n {
		t.Fatalf("%d measurements, want %d", i, n)
	}
}

// TestWarmupMatchesExplicitModulator proves the fleet-shared warmup changes
// no numerics: an instrument using the config's implicit modulator (warmup
// on) must measure bit-identically to one handed the same modulator
// explicitly (warmup off).
func TestWarmupMatchesExplicitModulator(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	lineA, ra := testRig(t, 41, cfg) // implicit modulator → warmup
	lineB, rb := testRigExplicitMod(t, 41, cfg)
	if ra.wu == nil {
		t.Fatal("default rig should have a warmup")
	}
	if rb.wu != nil {
		t.Fatal("explicit-modulator rig should have no warmup")
	}
	env := txline.RoomTemperature()
	for round := 0; round < 3; round++ {
		want := rb.Measure(lineB, env)
		got := ra.Measure(lineA, env)
		for b := range want.IIP.Samples {
			if math.Float64bits(got.IIP.Samples[b]) != math.Float64bits(want.IIP.Samples[b]) {
				t.Fatalf("round %d bin %d: warmup %v != explicit %v",
					round, b, got.IIP.Samples[b], want.IIP.Samples[b])
			}
		}
		for b, s := range want.Saturated {
			if got.Saturated[b] != s {
				t.Fatalf("round %d bin %d: saturation mismatch", round, b)
			}
		}
	}
}
