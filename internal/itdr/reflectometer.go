package itdr

import (
	"fmt"
	"math"

	"divot/internal/analog"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// Measurement is the result of one full IIP acquisition.
type Measurement struct {
	// IIP is the reconstructed back-reflection waveform at the line input,
	// sampled at the ETS-equivalent rate (one sample per phase bin). The
	// coupler factor has been divided out, so values are line-referred
	// volts.
	IIP *signal.Waveform
	// Trials is the total number of comparator decisions taken.
	Trials int
	// CyclesUsed is the number of sample-clock cycles consumed, including
	// data cycles that offered no usable launch edge.
	CyclesUsed int
	// Duration is CyclesUsed divided by the sample clock — the wall-clock
	// measurement time.
	Duration float64
}

// Reflectometer is one iTDR instance attached to a line. It owns the
// comparator (whose noise stream is part of the instrument's identity) and
// the PDM modulator, which in a real chip is shared among all iTDRs.
type Reflectometer struct {
	cfg   Config
	comp  *analog.Comparator
	mod   analog.Modulator
	apc   APC
	probe txline.Probe
	envRN *rng.Stream
	seq   uint64 // measurement counter, for per-measurement sub-streams
}

// New builds a reflectometer. The stream seeds both the comparator noise and
// per-measurement environment sampling; modulator may be nil to use the
// config's RC quasi-triangle.
func New(cfg Config, probe txline.Probe, mod analog.Modulator, stream *rng.Stream) (*Reflectometer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// A non-coprime modulation ratio is permitted — the Vernier sweep
	// degrades and the dynamic range collapses, which the coprime ablation
	// demonstrates — so it is not a validation error.
	if mod == nil {
		mod = analog.NewTriangleModulator(cfg.ModFrequency(), cfg.ModAmplitude, cfg.ModTauRatio)
	}
	return &Reflectometer{
		cfg:   cfg,
		comp:  analog.NewComparator(cfg.ComparatorNoise, cfg.ComparatorOffset, stream.Child("comparator")),
		mod:   mod,
		apc:   APC{NoiseSigma: cfg.ComparatorNoise, Offset: cfg.ComparatorOffset},
		probe: probe,
		envRN: stream.Child("environment"),
	}, nil
}

// MustNew is New but panics on configuration errors; for tests and examples
// with static configuration.
func MustNew(cfg Config, probe txline.Probe, mod analog.Modulator, stream *rng.Stream) *Reflectometer {
	r, err := New(cfg, probe, mod, stream)
	if err != nil {
		panic(fmt.Sprintf("itdr: %v", err))
	}
	return r
}

// Config returns the instrument configuration.
func (r *Reflectometer) Config() Config { return r.cfg }

// InjectOffsetDrift adds v volts of *uncalibrated* comparator offset — aging
// or supply drift that happened after factory calibration, which the APC's
// inverse map does not know about. Reconstruction then carries a systematic
// bias; the offset-drift ablation quantifies how much drift the
// authentication margin tolerates before recalibration is due.
func (r *Reflectometer) InjectOffsetDrift(v float64) {
	r.comp.Offset += v
}

// Probe returns the probing-edge description.
func (r *Reflectometer) Probe() txline.Probe { return r.probe }

// Measure acquires one full IIP of the line under the given environment.
// The environment condition (temperature, strain, EMI phase) is sampled once
// per measurement; comparator noise is drawn per trial.
func (r *Reflectometer) Measure(line *txline.Line, env txline.Environment) Measurement {
	cond := env.Sample(r.envRN)
	return r.measureUnder(line, cond)
}

// measureUnder runs the acquisition for a fixed environmental condition.
func (r *Reflectometer) measureUnder(line *txline.Line, cond txline.Condition) Measurement {
	cfg := r.cfg
	bins := cfg.Bins()
	rate := cfg.EquivalentRate()

	// Physical truth: the back-reflection waveform for this condition, and
	// the incident edge that leaks through the coupler's finite directivity.
	backward := line.Reflect(r.probe, cond.DeltaT, cond.Stretch, rate, bins)
	forward := signal.StepEdge(rate, bins, 0, r.probe.RiseTime, r.probe.Amplitude)
	seen := cfg.Coupler.Output(backward, forward)
	// Directional couplers are inherently AC-coupled: the DC level of the
	// reflected waveform (set by the line's average impedance offset from
	// nominal) never reaches the detector. Removing it keeps the waveform
	// centered in the APC's dynamic range regardless of which line is
	// attached — without this, lines with a large average offset would
	// saturate the comparator range.
	seen = signal.RemoveMean(seen)

	clockPeriod := 1 / cfg.SampleClockHz
	// Fresh randomness for each measurement: the trigger pattern depends
	// on the live traffic and the EMI aggressor drifts in phase, so
	// neither may repeat identically between measurements.
	r.seq++
	mStream := r.envRN.Child(fmt.Sprintf("measurement-%d", r.seq))
	trigStream := mStream.Child("trigger")
	emiStream := mStream.Child("emi")
	jitStream := mStream.Child("pll-jitter")

	out := signal.New(rate, bins)
	trials := 0
	cycle := 0
	refs := make([]float64, cfg.TrialsPerBin)
	for m := 0; m < bins; m++ {
		tBin := float64(m) * cfg.PhaseStepSec
		ones := 0
		for j := 0; j < cfg.TrialsPerBin; j++ {
			// Advance to the next cycle carrying a usable launch edge.
			polarity := 1.0
			switch cfg.Trigger {
			case TriggerClock:
				cycle++
			case TriggerFIFO:
				for {
					cycle++
					if trigStream.Bool(cfg.TriggerDensity) {
						break
					}
				}
			case TriggerNone:
				for {
					cycle++
					if trigStream.Bool(2 * cfg.TriggerDensity) {
						break
					}
				}
				// Edge direction is uncontrolled: half the launches are
				// rising, half falling, and a falling edge's reflection is
				// the negative of the rising edge's.
				if trigStream.Bool(0.5) {
					polarity = -1
				}
			}
			tAbs := float64(cycle)*clockPeriod + tBin
			ref := r.mod.Level(tAbs)
			refs[j] = ref
			// The EMI aggressor is asynchronous to the sampling clock: its
			// frequency offset and jitter decorrelate the phase between
			// successive visits to the same bin, so each trial sees an
			// independent phase — the premise of the paper's synchronized-
			// averaging argument (§IV-C). A phase-locked aggressor would
			// not average out; that adversarial case is out of scope here.
			var emi float64
			if cond.EMIAmplitude != 0 {
				emi = cond.EMIAmplitude * math.Sin(emiStream.Uniform(0, 2*math.Pi))
			}
			// The PLL's phase-shifted clock jitters around the nominal
			// bin position, so each trial samples the waveform slightly
			// off-bin — a timing-noise contribution that scales with the
			// local slew rate.
			tSample := tBin
			if cfg.PhaseJitterRMS > 0 {
				tSample += jitStream.Gaussian(0, cfg.PhaseJitterRMS)
			}
			vsig := polarity*seen.At(tSample) + emi + cond.CrosstalkAt(tBin)
			if r.comp.Sample(vsig, ref) {
				ones++
			}
			trials++
		}
		p := float64(ones) / float64(cfg.TrialsPerBin)
		v := r.apc.EstimateVoltage(p, cfg.TrialsPerBin, refs)
		// Refer the estimate back to the line by undoing the coupler gain.
		out.Samples[m] = v / cfg.Coupler.Factor
	}
	return Measurement{
		IIP:        out,
		Trials:     trials,
		CyclesUsed: cycle,
		Duration:   float64(cycle) / cfg.SampleClockHz,
	}
}
