package itdr

import (
	"fmt"
	"math"

	"divot/internal/analog"
	"divot/internal/pool"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/telemetry"
	"divot/internal/txline"
)

// Measurement is the result of one full IIP acquisition.
type Measurement struct {
	// IIP is the reconstructed back-reflection waveform at the line input,
	// sampled at the ETS-equivalent rate (one sample per phase bin). The
	// coupler factor has been divided out, so values are line-referred
	// volts.
	IIP *signal.Waveform
	// Trials is the total number of comparator decisions taken.
	Trials int
	// CyclesUsed is the number of sample-clock cycles consumed, including
	// data cycles that offered no usable launch edge.
	CyclesUsed int
	// Duration is CyclesUsed divided by the sample clock — the wall-clock
	// measurement time.
	Duration float64
	// Saturated flags, per ETS bin, a ones-count pegged at either rail
	// (0 or TrialsPerBin). A pegged count carries no analog information —
	// the inverse map clamps it to the edge of the reference sweep — so a
	// bin that saturates persistently is dead or stuck, and the protocol
	// layer uses this to mask degraded bins out of matching.
	Saturated []bool
}

// Reflectometer is one iTDR instance attached to a line. It owns the
// comparator (whose noise stream is part of the instrument's identity) and
// the PDM modulator, which in a real chip is shared among all iTDRs.
type Reflectometer struct {
	cfg   Config
	comp  *analog.Comparator
	mod   analog.Modulator
	apc   APC
	probe txline.Probe
	envRN *rng.Stream
	seq   uint64 // measurement counter, for per-measurement sub-streams
	inj   Injector

	// sink, when non-nil, receives one telemetry event per completed
	// measurement; link/side label the instrument in those events. See
	// SetSink.
	sink       telemetry.Sink
	link, side string

	// fwd caches the forward incident edge fed to the coupler's directivity
	// term: it depends only on static configuration (rate, bins, probe), so
	// it is synthesized once and reused by every measurement.
	fwd *signal.Waveform

	// binInv caches one inverse APC map per ETS phase bin across
	// measurements. Clock-triggered probing revisits each bin with the same
	// Vernier reference sequence every measurement, so from the second
	// measurement on the bin's inverter is promoted to a tabulated CDF and
	// reconstruction stops paying for erfc entirely. Each slot is touched by
	// exactly one worker per measurement (bins are the unit of fan-out), and
	// measurements are separated by the pool's join, so no locking is
	// needed.
	binInv []*Inverter
	// binInvStore backs binInv with a single flat allocation so building the
	// per-bin cache costs one slice instead of one heap Inverter per bin.
	binInvStore []Inverter

	// wu, when non-nil, is the fleet-shared warm-up for this (Config, Probe)
	// pair: forward edge, per-bin reference schedules, and per-bin inverse-map
	// cores (see warmup). Only clock-triggered instruments using the config's
	// own modulator have one — exactly the case where the acquisition schedule
	// is a pure function of configuration.
	wu *warmup
}

// New builds a reflectometer. The stream seeds both the comparator noise and
// per-measurement environment sampling; modulator may be nil to use the
// config's RC quasi-triangle.
func New(cfg Config, probe txline.Probe, mod analog.Modulator, stream *rng.Stream) (*Reflectometer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// A non-coprime modulation ratio is permitted — the Vernier sweep
	// degrades and the dynamic range collapses, which the coprime ablation
	// demonstrates — so it is not a validation error.
	var wu *warmup
	if mod == nil {
		mod = analog.NewTriangleModulator(cfg.ModFrequency(), cfg.ModAmplitude, cfg.ModTauRatio)
		// The config's own modulator plus clock triggering makes the whole
		// acquisition schedule a pure function of (cfg, probe); share it.
		wu = warmupFor(cfg, probe)
	}
	r := &Reflectometer{
		cfg:   cfg,
		comp:  analog.NewComparator(cfg.ComparatorNoise, cfg.ComparatorOffset, stream.Child("comparator")),
		mod:   mod,
		apc:   NewAPC(cfg.ComparatorNoise, cfg.ComparatorOffset),
		probe: probe,
		envRN: stream.Child("environment"),
		wu:    wu,
	}
	if wu != nil {
		r.fwd = wu.fwd
	}
	return r, nil
}

// MustNew is New but panics on configuration errors; for tests and examples
// with static configuration.
func MustNew(cfg Config, probe txline.Probe, mod analog.Modulator, stream *rng.Stream) *Reflectometer {
	r, err := New(cfg, probe, mod, stream)
	if err != nil {
		panic(fmt.Sprintf("itdr: %v", err))
	}
	return r
}

// Config returns the instrument configuration.
func (r *Reflectometer) Config() Config { return r.cfg }

// InjectOffsetDrift adds v volts of *uncalibrated* comparator offset — aging
// or supply drift that happened after factory calibration, which the APC's
// inverse map does not know about. Reconstruction then carries a systematic
// bias; the offset-drift ablation quantifies how much drift the
// authentication margin tolerates before recalibration is due.
func (r *Reflectometer) InjectOffsetDrift(v float64) {
	r.comp.Offset += v
}

// Probe returns the probing-edge description.
func (r *Reflectometer) Probe() txline.Probe { return r.probe }

// Measure acquires one full IIP of the line under the given environment.
// The environment condition (temperature, strain, EMI phase) is sampled once
// per measurement; comparator noise is drawn per trial. The returned
// Measurement owns its memory (it is detached from the pooled arena backing
// the acquisition), so callers may retain it across further measurements —
// calibration averaging depends on that.
func (r *Reflectometer) Measure(line *txline.Line, env txline.Environment) Measurement {
	a := arenaPool.Get().(*Arena)
	m := r.MeasureInto(a, line, env)
	m.IIP = m.IIP.Clone()
	m.Saturated = append([]bool(nil), m.Saturated...)
	arenaPool.Put(a)
	return m
}

// MeasureInto is Measure running entirely inside the caller's arena: the
// returned Measurement's IIP and Saturated alias the arena's buffers and are
// valid until the next MeasureInto on the same arena. In steady state (warm
// arena, warm per-bin inverter cache, Parallelism 1) a measurement allocates
// nothing; results are bit-identical to Measure at any parallelism.
func (r *Reflectometer) MeasureInto(a *Arena, line *txline.Line, env txline.Environment) Measurement {
	cond := env.Sample(r.envRN)
	return r.measureUnder(a, line, cond)
}

// measureUnder runs the acquisition for a fixed environmental condition.
//
// Acquisition is organized around the fact that ETS phase bins are
// embarrassingly parallel: every bin owns its trigger search, its trial
// loop, and its inverse-map evaluation, and nothing a bin computes feeds any
// other bin. Each bin therefore derives all of its randomness (trigger
// pattern, EMI phase, PLL jitter, comparator noise) from its own labelled
// child of the per-measurement stream and writes only to its own output
// slot, so fanning bins across cfg.EffectiveParallelism() workers yields
// bit-identical IIPs at any worker count — Parallelism=1 runs the same
// per-bin code inline.
func (r *Reflectometer) measureUnder(a *Arena, line *txline.Line, cond txline.Condition) Measurement {
	r.seq++
	return r.measureAt(a, line, cond, r.seq, false)
}

// measureAt is measureUnder for an explicit sequence number. shared marks a
// measurement running concurrently with others on the same instrument (the
// MeasureSeries fan-out): it must treat all instrument state — fwd, binInv,
// the warmup — as frozen, reading but never writing it. The series
// leader guarantees that state is fully built and promoted first, and the
// eligibility gate (clock trigger, no injector) guarantees a shared
// measurement never needs to mutate it.
func (r *Reflectometer) measureAt(a *Arena, line *txline.Line, cond txline.Condition, seq uint64, shared bool) Measurement {
	cfg := r.cfg
	bins := cfg.Bins()
	rate := cfg.EquivalentRate()

	// Consult the fault injector first: environmental glitches must land
	// before the line response is synthesized. Incrementing seq in the
	// caller (rather than just before the per-measurement stream derivation
	// below) changes nothing on the healthy path — no randomness is drawn in
	// between.
	var mf MeasurementFault
	faulted := false
	if r.inj != nil {
		mf, faulted = r.inj.BeginMeasurement(seq)
	}
	if faulted && mf.Condition != nil {
		ct := mf.Condition(ConditionTransform{DeltaT: cond.DeltaT, EMIAmplitude: cond.EMIAmplitude})
		cond.DeltaT = ct.DeltaT
		cond.EMIAmplitude = ct.EMIAmplitude
	}

	workers := cfg.EffectiveParallelism()
	if workers > bins {
		workers = bins
	}
	a.prepare(rate, bins, workers, cfg.TrialsPerBin)

	// Physical truth: the back-reflection waveform for this condition, and
	// the incident edge that leaks through the coupler's finite directivity.
	// The forward edge depends only on static configuration, so it is
	// synthesized once per instrument and reused.
	backward := line.ReflectInto(&a.reflect, r.probe, cond.DeltaT, cond.Stretch, rate, bins)
	if r.fwd == nil || r.fwd.Rate != rate || r.fwd.Len() != bins {
		r.fwd = signal.StepEdge(rate, bins, 0, r.probe.RiseTime, r.probe.Amplitude)
	}
	a.seen = cfg.Coupler.OutputInto(a.seen, backward, r.fwd)
	// Directional couplers are inherently AC-coupled: the DC level of the
	// reflected waveform (set by the line's average impedance offset from
	// nominal) never reaches the detector. Removing it keeps the waveform
	// centered in the APC's dynamic range regardless of which line is
	// attached — without this, lines with a large average offset would
	// saturate the comparator range. (In place: the coupler output above is
	// a buffer this measurement owns.)
	seen := signal.RemoveMeanInPlace(a.seen)

	// Fresh randomness for each measurement: the trigger pattern depends
	// on the live traffic and the EMI aggressor drifts in phase, so
	// neither may repeat identically between measurements. (Deriving the
	// child reads only the parent's seed, so concurrent shared measurements
	// never contend on envRN.)
	a.mStream.ReseedChildN(r.envRN, "measurement", seq)
	if !shared && len(r.binInv) != bins {
		r.binInv = make([]*Inverter, bins)
		r.binInvStore = make([]Inverter, bins)
	}

	// Jitter faults add in quadrature to the PLL's own phase noise.
	jitterRMS := cfg.PhaseJitterRMS
	if faulted && mf.ExtraJitterRMS > 0 {
		jitterRMS = math.Sqrt(jitterRMS*jitterRMS + mf.ExtraJitterRMS*mf.ExtraJitterRMS)
	}

	// Deterministic per-bin cycle base: bin m behaves as if it were acquired
	// after the m bins before it, preserving the sequential path's Vernier
	// phase rotation from bin to bin (without it, every bin would sweep the
	// reference levels from the same phase and the quantization residual
	// would correlate across the whole IIP). For data-triggered modes the
	// base uses the expected stride 1/density.
	binStride := cfg.TrialsPerBin
	if cfg.Trigger != TriggerClock {
		binStride = int(float64(cfg.TrialsPerBin) / cfg.TriggerDensity)
	}

	a.ctx = binCtx{
		cond:        cond,
		seen:        seen,
		mf:          mf,
		faulted:     faulted,
		distorted:   faulted && mf.distortsTrials(),
		jitterRMS:   jitterRMS,
		clockPeriod: 1 / cfg.SampleClockHz,
		binStride:   binStride,
		out:         a.out,
		binCycles:   a.binCycles,
		saturated:   a.saturated,
		scratch:     a.scratch,
		binRN:       a.binRN,
		mStream:     a.mStream,
		wu:          r.wu,
		shared:      shared,
	}
	ctx := &a.ctx
	if workers <= 1 {
		// Inline fast path: no closure, no goroutines — the steady-state
		// Parallelism=1 monitoring loop allocates nothing here.
		for m := 0; m < bins; m++ {
			r.measureBin(ctx, 0, m)
		}
	} else {
		pool.Run(bins, workers, func(worker, m int) { r.measureBin(ctx, worker, m) })
	}

	cycles := 0
	for _, c := range a.binCycles {
		cycles += c
	}
	if !shared {
		r.emitMeasurement(seq, a.saturated)
	}
	return Measurement{
		IIP:        a.out,
		Trials:     bins * cfg.TrialsPerBin,
		CyclesUsed: cycles,
		Duration:   float64(cycles) / cfg.SampleClockHz,
		Saturated:  a.saturated,
	}
}

// binCtx is the read-mostly state shared by every bin of one measurement;
// it lives inside the arena so assembling it per measurement costs nothing.
// Workers touch only their own scratch/binRN slot and their bins' output
// slots.
type binCtx struct {
	cond        txline.Condition
	seen        *signal.Waveform
	mf          MeasurementFault
	faulted     bool
	distorted   bool
	jitterRMS   float64
	clockPeriod float64
	binStride   int
	out         *signal.Waveform
	binCycles   []int
	saturated   []bool
	scratch     [][]float64
	binRN       []*rng.Stream
	mStream     *rng.Stream
	wu          *warmup
	shared      bool
}

// emitMeasurement publishes the per-measurement telemetry event. The series
// fan-out calls it from the ordered hand-off so events keep their exact
// sequential order.
func (r *Reflectometer) emitMeasurement(seq uint64, saturated []bool) {
	if r.sink == nil {
		return
	}
	sat := 0
	for _, s := range saturated {
		if s {
			sat++
		}
	}
	r.sink.Emit(telemetry.Event{
		Kind: telemetry.EventMeasurement,
		Link: r.link, Side: r.side,
		Round: seq, SatBins: sat,
	})
}

// measureBin acquires one ETS phase bin: trigger search, trial loop, and
// inverse-map evaluation. All randomness derives from the bin index, never
// from which worker runs the bin or in what order — the determinism contract
// behind bit-identical IIPs at any parallelism.
func (r *Reflectometer) measureBin(c *binCtx, worker, m int) {
	cfg := r.cfg
	bs := c.binRN[worker]
	bs.ReseedChildN(c.mStream, "bin", uint64(m))
	// With a shared warmup the bin's reference schedule was precomputed once
	// for the whole fleet: read it instead of re-evaluating the modulator per
	// trial. wuRefs is immutable — the trial loop must not write it.
	refs := c.scratch[worker]
	var wuRefs []float64
	if c.wu != nil {
		wuRefs = c.wu.refs[m]
		refs = wuRefs
	}
	tBin := float64(m) * cfg.PhaseStepSec
	xtalk := c.cond.CrosstalkAt(tBin)
	var bf BinFault
	if c.faulted && c.mf.Bin != nil {
		bf = c.mf.Bin(m)
	}
	ones := 0
	cycleBase := m * c.binStride
	cycle := 0
	for j := 0; j < cfg.TrialsPerBin; j++ {
		// Advance to the bin's next cycle carrying a usable launch edge.
		polarity := 1.0
		switch cfg.Trigger {
		case TriggerClock:
			cycle++
		case TriggerFIFO:
			for {
				cycle++
				if bs.Bool(cfg.TriggerDensity) {
					break
				}
			}
		case TriggerNone:
			for {
				cycle++
				if bs.Bool(2 * cfg.TriggerDensity) {
					break
				}
			}
			// Edge direction is uncontrolled: half the launches are
			// rising, half falling, and a falling edge's reflection is
			// the negative of the rising edge's.
			if bs.Bool(0.5) {
				polarity = -1
			}
		}
		var ref float64
		if wuRefs != nil {
			ref = wuRefs[j]
		} else {
			tAbs := float64(cycleBase+cycle)*c.clockPeriod + tBin
			ref = r.mod.Level(tAbs)
			refs[j] = ref
		}
		// The EMI aggressor is asynchronous to the sampling clock: its
		// frequency offset and jitter decorrelate the phase between
		// successive visits to the same bin, so each trial sees an
		// independent phase — the premise of the paper's synchronized-
		// averaging argument (§IV-C). A phase-locked aggressor would
		// not average out; that adversarial case is out of scope here.
		var emi float64
		if c.cond.EMIAmplitude != 0 {
			emi = c.cond.EMIAmplitude * math.Sin(bs.Uniform(0, 2*math.Pi))
		}
		// The PLL's phase-shifted clock jitters around the nominal
		// bin position, so each trial samples the waveform slightly
		// off-bin — a timing-noise contribution that scales with the
		// local slew rate.
		tSample := tBin
		if c.faulted {
			tSample += c.mf.PhaseOffset
		}
		if c.jitterRMS > 0 {
			tSample += bs.Gaussian(0, c.jitterRMS)
		}
		vsig := polarity*c.seen.At(tSample) + emi + xtalk
		// Fault paths replace the comparator decision; the healthy
		// branch is byte-for-byte the original sampling call.
		var dec bool
		switch {
		case bf.Dead:
			// A dead acquisition slice never fires; no noise is drawn,
			// mirroring hardware where the counter simply sees no pulses.
		case c.faulted && c.mf.Stuck == StuckLow:
		case c.faulted && c.mf.Stuck == StuckHigh:
			dec = true
		case c.distorted:
			dec = r.comp.SampleDistorted(bs, vsig, ref, c.mf.ExtraOffset, c.mf.noiseScale())
		default:
			dec = r.comp.SampleWith(bs, vsig, ref)
		}
		if dec {
			ones++
		}
	}
	if bf.CounterXOR != 0 {
		ones ^= int(bf.CounterXOR)
		if ones > cfg.TrialsPerBin {
			// The physical counter is TrialsPerBin wide; an upset cannot
			// read beyond full scale.
			ones = cfg.TrialsPerBin
		}
	}
	c.saturated[m] = ones == 0 || ones == cfg.TrialsPerBin
	p := float64(ones) / float64(cfg.TrialsPerBin)
	// Per-bin inverse-map cache: reuse the inverter while the bin's
	// reference sequence repeats (always, under TriggerClock) and
	// promote it to a tabulated CDF on the first reuse. Data-triggered
	// modes see fresh cycle offsets each measurement, so they rebuild —
	// still cheaper than before thanks to the sorted, windowed CDF.
	inv := r.binInv[m]
	switch {
	case c.shared:
		// Shared measurements run after the series leader built and promoted
		// every bin's inverter, so the cache is frozen and always hits; the
		// rebuild below is defensive (unreachable under the clock-trigger
		// eligibility gate) and deliberately leaves instrument state alone.
		if inv == nil || !inv.Matches(refs) {
			inv = r.apc.NewInverter(refs)
		}
	case inv == nil || !inv.Matches(refs):
		// Cache miss: rebuild in place into the flat per-bin store — one
		// slice for all bins instead of a heap Inverter per bin, and with a
		// warmup the CDF/refs/memo alias the fleet-shared copies.
		inv = &r.binInvStore[m]
		var wb *warmBin
		if c.wu != nil {
			wb = &c.wu.bins[m]
		}
		r.apc.resetInverter(inv, refs, wb)
		r.binInv[m] = inv
	default:
		inv.Promote()
	}
	// Refer the estimate back to the line by undoing the coupler gain.
	c.out.Samples[m] = inv.Estimate(p, cfg.TrialsPerBin) / cfg.Coupler.Factor
	c.binCycles[m] = cycle
}
