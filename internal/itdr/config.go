// Package itdr implements the paper's integrated time-domain reflectometer:
// analog-to-probability conversion (APC) built on a 1-bit comparator,
// probability density modulation (PDM) with a Vernier triangle reference,
// equivalent time sampling (ETS) via PLL phase stepping, and the FIFO-driven
// trigger that makes runtime measurement on live data possible. It is the
// paper's primary instrument (§II), rendered as a behavioral simulation.
package itdr

import (
	"fmt"

	"divot/internal/analog"
	"divot/internal/pool"
)

// TriggerMode selects which bus events launch probe edges (§II-E).
type TriggerMode int

const (
	// TriggerClock probes on every rising edge of the clock lane: edges are
	// perfectly regular, so no trigger logic is needed. This is the mode
	// the paper's memory-bus design uses.
	TriggerClock TriggerMode = iota
	// TriggerFIFO probes on data-lane cycles where the FIFO shows a 1
	// followed by a 0 — a guaranteed falling launch edge. Only a fraction
	// of cycles qualify, stretching the measurement.
	TriggerFIFO
	// TriggerNone probes on every data-lane edge regardless of direction.
	// Rising and falling reflections cancel; this mode exists to
	// demonstrate why the trigger is necessary (ablation A-TR).
	TriggerNone
)

// String returns the mode name.
func (m TriggerMode) String() string {
	switch m {
	case TriggerClock:
		return "clock"
	case TriggerFIFO:
		return "fifo"
	case TriggerNone:
		return "none"
	}
	return fmt.Sprintf("TriggerMode(%d)", int(m))
}

// Config holds the iTDR's operating parameters.
type Config struct {
	// SampleClockHz is the data/sampling clock f_s (paper: 156.25 MHz).
	SampleClockHz float64
	// PhaseStepSec is the ETS phase increment τ (paper: 11.16 ps from the
	// Ultrascale+ PLL).
	PhaseStepSec float64
	// PhaseJitterRMS is the RMS timing jitter of the PLL's phase-shifted
	// sampling clock, in seconds. Each trial's sampling instant wanders by
	// this much around its nominal bin position — the ETS time base is
	// only as good as the PLL. Zero models an ideal PLL.
	PhaseJitterRMS float64
	// WindowSec is the observed round-trip span; bins cover [0, WindowSec).
	WindowSec float64
	// TrialsPerBin is the number of comparator decisions accumulated per
	// ETS phase bin.
	TrialsPerBin int
	// ModFreqRatioNum/Den relate the PDM modulator frequency to the sample
	// clock: f_m = f_s · Num/Den. Den is the number of distinct Vernier
	// reference levels; Num and Den must be coprime for PDM to work
	// (paper example: 6/5).
	ModFreqRatioNum, ModFreqRatioDen int
	// ModAmplitude is the modulator swing in volts at the comparator
	// reference input; ModTauRatio shapes the RC quasi-triangle.
	ModAmplitude float64
	ModTauRatio  float64
	// ComparatorNoise is the comparator's input-referred RMS noise.
	ComparatorNoise float64
	// ComparatorOffset is the static comparator offset (calibrated, so the
	// reconstruction knows it).
	ComparatorOffset float64
	// Coupler is the reflection tap.
	Coupler analog.Coupler
	// Trigger selects the probing mode.
	Trigger TriggerMode
	// TriggerDensity is the probability that a data cycle offers a usable
	// launch edge in TriggerFIFO/TriggerNone modes (0.25 for scrambled
	// random data: P(1 then 0)).
	TriggerDensity float64
	// Parallelism bounds the worker goroutines one Measure call fans its ETS
	// phase bins across. 0 (the default) selects runtime.GOMAXPROCS(0); 1
	// runs fully inline on the calling goroutine. Results are bit-identical
	// at every setting — each bin derives its randomness from its own
	// labelled rng child, so scheduling cannot change what is drawn.
	Parallelism int
}

// DefaultConfig returns the prototype's parameters (§IV-A): 156.25 MHz
// clocks, 11.16 ps phase steps, and a measurement budget of about 8k trials
// so a full IIP completes within the paper's 50 µs envelope.
func DefaultConfig() Config {
	return Config{
		SampleClockHz: 156.25e6,
		PhaseStepSec:  11.16e-12,
		// Ultrascale+ MMCM output jitter is a few ps RMS.
		PhaseJitterRMS: 2e-12,
		WindowSec:      3.83e-9,
		TrialsPerBin:   25,
		// 26/25: one Vernier cycle spans 25 probes, giving 25 distinct
		// reference levels — a denser sweep than the paper's illustrative
		// 6/5 example, at identical hardware cost (the ratio is set by the
		// modulator divider).
		ModFreqRatioNum:  26,
		ModFreqRatioDen:  25,
		ModAmplitude:     6e-3,
		ModTauRatio:      0.5,
		ComparatorNoise:  0.4e-3,
		ComparatorOffset: 0,
		Coupler:          analog.DefaultCoupler(),
		Trigger:          TriggerClock,
		TriggerDensity:   0.25,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SampleClockHz <= 0:
		return fmt.Errorf("itdr: sample clock %v Hz must be positive", c.SampleClockHz)
	case c.PhaseStepSec <= 0:
		return fmt.Errorf("itdr: phase step %v s must be positive", c.PhaseStepSec)
	case c.PhaseJitterRMS < 0:
		return fmt.Errorf("itdr: negative phase jitter %v", c.PhaseJitterRMS)
	case c.WindowSec <= 0:
		return fmt.Errorf("itdr: window %v s must be positive", c.WindowSec)
	case c.WindowSec > 1/c.SampleClockHz:
		return fmt.Errorf("itdr: window %v s exceeds the clock period %v s",
			c.WindowSec, 1/c.SampleClockHz)
	case c.TrialsPerBin <= 0:
		return fmt.Errorf("itdr: trials per bin %d must be positive", c.TrialsPerBin)
	case c.ModFreqRatioNum <= 0 || c.ModFreqRatioDen <= 0:
		return fmt.Errorf("itdr: modulation ratio %d/%d must be positive",
			c.ModFreqRatioNum, c.ModFreqRatioDen)
	case c.ComparatorNoise <= 0:
		return fmt.Errorf("itdr: comparator noise %v must be positive", c.ComparatorNoise)
	case c.Trigger != TriggerClock && (c.TriggerDensity <= 0 || c.TriggerDensity > 1):
		return fmt.Errorf("itdr: trigger density %v must be in (0, 1]", c.TriggerDensity)
	case c.Parallelism < 0:
		return fmt.Errorf("itdr: negative parallelism %d", c.Parallelism)
	}
	return nil
}

// EffectiveParallelism resolves the Parallelism knob: 0 means
// runtime.GOMAXPROCS(0).
func (c Config) EffectiveParallelism() int { return pool.Workers(c.Parallelism) }

// Bins returns the number of ETS phase bins the window is divided into.
func (c Config) Bins() int {
	n := int(c.WindowSec / c.PhaseStepSec)
	if n < 1 {
		n = 1
	}
	return n
}

// EquivalentRate returns the ETS-equivalent sampling rate 1/τ.
func (c Config) EquivalentRate() float64 { return 1 / c.PhaseStepSec }

// SpatialResolution returns the one-way spatial resolution for the given
// propagation velocity: v·τ/2 (the factor 2 is the round trip).
func (c Config) SpatialResolution(velocity float64) float64 {
	return velocity * c.PhaseStepSec / 2
}

// TotalTrials returns the comparator decisions needed for one full IIP.
func (c Config) TotalTrials() int { return c.Bins() * c.TrialsPerBin }

// MeasurementDuration returns the wall-clock time of one full IIP
// measurement: one trial per qualifying cycle of the sample clock.
func (c Config) MeasurementDuration() float64 {
	cycles := float64(c.TotalTrials())
	if c.Trigger != TriggerClock {
		cycles /= c.TriggerDensity
	}
	return cycles / c.SampleClockHz
}

// ModFrequency returns the PDM modulator frequency f_m.
func (c Config) ModFrequency() float64 {
	return c.SampleClockHz * float64(c.ModFreqRatioNum) / float64(c.ModFreqRatioDen)
}
