package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Subscribe is the GET /v1/stream handshake: which links to watch, which
// event kinds to deliver, and each link's resume cursor. Empty Links means
// the whole fleet; empty Kinds means every kind the feed carries. A link
// present in After with a non-zero cursor is a continuity claim, answered
// with a Gap frame when the server cannot honor it.
//
// The SDK sends it as the request's JSON body. For hand-driven clients
// (curl, the smoke script) the same fields travel as query parameters —
// links and kinds comma-separated, after as repeated link:seq pairs — and a
// JSON body, when present, wins wholesale over the query form.
type Subscribe struct {
	Links []string          `json:"links,omitempty"`
	Kinds []string          `json:"kinds,omitempty"`
	After map[string]uint64 `json:"after,omitempty"`
}

// Hello is the server's first frame on every stream connection: the resolved
// link set (sorted), so the subscriber knows exactly what a fleet-wide
// subscription expanded to.
type Hello struct {
	Links []string `json:"links"`
}

// Gap is a FrameGap payload: the subscriber asked link Link to resume past
// Resume, but the oldest sequence number the server can still serve is
// Oldest > Resume+1 — the events between fell off the bounded retention ring
// and can never be delivered.
type Gap struct {
	Link   string `json:"link"`
	Resume uint64 `json:"resume"`
	Oldest uint64 `json:"oldest"`
}

// ErrorInfo is a FrameError payload: a structured terminal error using the
// same code vocabulary as the v1 JSON envelope.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// maxSubscribeBody bounds the handshake body read.
const maxSubscribeBody = 1 << 20

// ParseSubscribeRequest reads a stream subscription from an HTTP request:
// query parameters first, then a JSON body (which, when non-empty, replaces
// the query form entirely). Malformed input is an error the caller should
// answer as bad_request.
func ParseSubscribeRequest(r *http.Request) (Subscribe, error) {
	var sub Subscribe
	q := r.URL.Query()
	sub.Links = splitList(q["links"])
	sub.Kinds = splitList(q["kinds"])
	for _, raw := range splitList(q["after"]) {
		i := strings.LastIndexByte(raw, ':')
		if i <= 0 || i == len(raw)-1 {
			return sub, fmt.Errorf("bad after entry %q: want link:seq", raw)
		}
		seq, err := strconv.ParseUint(raw[i+1:], 10, 64)
		if err != nil {
			return sub, fmt.Errorf("bad after entry %q: %v", raw, err)
		}
		if sub.After == nil {
			sub.After = make(map[string]uint64)
		}
		sub.After[raw[:i]] = seq
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubscribeBody))
	if err != nil {
		return sub, fmt.Errorf("reading subscribe body: %v", err)
	}
	if len(body) > 0 {
		sub = Subscribe{}
		if err := json.Unmarshal(body, &sub); err != nil {
			return sub, fmt.Errorf("parsing subscribe body: %v", err)
		}
	}
	return sub, nil
}

// splitList flattens repeated, comma-separated query values into one list,
// dropping empty entries.
func splitList(values []string) []string {
	var out []string
	for _, v := range values {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}
