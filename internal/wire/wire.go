// Package wire is the binary streaming transport of the attestation API: a
// compact length-prefixed, versioned frame format for telemetry events,
// spoken on GET /v1/stream by divotd (and fanned out by divotherd). It is
// versioned alongside internal/attest's v1 JSON envelope — Version here moves
// in lockstep with attest.Version — and exists because the SSE feed
// (JSON-over-HTTP, one connection per link) is the wrong shape for thousands
// of watchers over a large federation: one multiplexed connection carries
// many links, resumes each independently, and spends a handful of bytes per
// event instead of a JSON object.
//
// # Frame layout
//
//	[ length uint32 BE ][ version byte ][ type byte ][ payload ... ]
//
// length covers everything after itself (version + type + payload), so a
// reader can skip frames of unknown type wholesale. length must be at least 2
// and at most MaxFrameLen — an oversized prefix is rejected before any
// allocation, so a corrupt or adversarial stream cannot balloon memory.
//
// Frame types: Hello, Event, Heartbeat, Gap, Shutdown, Error (see FrameType).
// Control payloads (Hello, Gap, Error) are small JSON documents — they are
// rare, and JSON keeps them self-describing; Event payloads are binary (see
// event.go) because they are the volume.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the binary stream protocol version, carried in every frame. It
// tracks internal/attest's envelope version: the two describe one wire
// protocol in two encodings.
const Version = 1

// MaxFrameLen bounds one frame's length field (version + type + payload).
// Event payloads are tens to hundreds of bytes; 1 MiB leaves room for
// pathological Detail strings while keeping a torn or hostile length prefix
// from provoking a huge allocation.
const MaxFrameLen = 1 << 20

// ContentType is the HTTP content type of a binary event stream. The client
// SDK requires it on a 200 from GET /v1/stream — a proxy answering 200 with
// anything else is a protocol error, not a stream.
const ContentType = "application/x-divot-stream"

// FrameType tags what a frame carries.
type FrameType uint8

const (
	// FrameHello is the server's first frame on every stream connection: a
	// JSON Hello payload naming the resolved link set.
	FrameHello FrameType = 1
	// FrameEvent carries one telemetry event in the binary encoding.
	FrameEvent FrameType = 2
	// FrameHeartbeat is an empty keep-alive, the binary twin of SSE's ": hb".
	FrameHeartbeat FrameType = 3
	// FrameGap reports a broken per-link resume (JSON Gap payload): the
	// subscriber asked to continue past a sequence number the server's
	// retention ring has already evicted. The SDK surfaces it as
	// client.ResumeGapError and ends the watch instead of skipping the hole.
	FrameGap FrameType = 4
	// FrameShutdown announces the server is going away; the stream ends
	// cleanly and the client resumes elsewhere (or later) from its cursors.
	FrameShutdown FrameType = 5
	// FrameError carries a terminal structured error (JSON ErrorInfo payload,
	// same codes as the v1 envelope) for failures that strike after the
	// stream is already open — a federation shard dying mid-stream, say.
	FrameError FrameType = 6
)

// String names the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameEvent:
		return "event"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameGap:
		return "gap"
	case FrameShutdown:
		return "shutdown"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// Decode errors. ErrShortFrame means the input holds a truncated frame — a
// streaming reader should read more bytes; everything else is terminal for
// the connection.
var (
	ErrShortFrame   = errors.New("wire: truncated frame")
	ErrFrameTooLong = errors.New("wire: frame length exceeds MaxFrameLen")
	ErrBadVersion   = errors.New("wire: unsupported protocol version")
	ErrBadFrameType = errors.New("wire: unknown frame type")
)

// headerLen is the length prefix's size.
const headerLen = 4

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. It panics if payload exceeds MaxFrameLen-2 — frames are built by the
// server from bounded inputs, so that is a programming error, not a runtime
// condition.
func AppendFrame(dst []byte, t FrameType, payload []byte) []byte {
	n := 2 + len(payload)
	if n > MaxFrameLen {
		panic("wire: frame payload exceeds MaxFrameLen")
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, Version, byte(t))
	return append(dst, payload...)
}

// DecodeFrame parses the first frame in b, returning its type, its payload
// (aliasing b — copy before retaining), and how many bytes the frame
// consumed. ErrShortFrame means b ends mid-frame: read more and retry.
func DecodeFrame(b []byte) (t FrameType, payload []byte, n int, err error) {
	if len(b) < headerLen {
		return 0, nil, 0, ErrShortFrame
	}
	ln := binary.BigEndian.Uint32(b)
	if ln > MaxFrameLen {
		return 0, nil, 0, ErrFrameTooLong
	}
	if ln < 2 {
		return 0, nil, 0, fmt.Errorf("wire: frame length %d below header", ln)
	}
	total := headerLen + int(ln)
	if len(b) < total {
		return 0, nil, 0, ErrShortFrame
	}
	if b[headerLen] != Version {
		return 0, nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, b[headerLen])
	}
	t = FrameType(b[headerLen+1])
	if t < FrameHello || t > FrameError {
		return 0, nil, 0, fmt.Errorf("%w: %d", ErrBadFrameType, uint8(t))
	}
	return t, b[headerLen+2 : total], total, nil
}

// Reader decodes frames off a byte stream. Payloads alias an internal buffer
// that the next call to Next overwrites.
type Reader struct {
	r   io.Reader
	hdr [headerLen + 2]byte
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads one frame, blocking until a full frame (or stream end) arrives.
// io.EOF is returned only at a clean frame boundary; a stream severed
// mid-frame reports io.ErrUnexpectedEOF.
func (rd *Reader) Next() (FrameType, []byte, error) {
	if _, err := io.ReadFull(rd.r, rd.hdr[:headerLen]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	ln := binary.BigEndian.Uint32(rd.hdr[:headerLen])
	if ln > MaxFrameLen {
		return 0, nil, ErrFrameTooLong
	}
	if ln < 2 {
		return 0, nil, fmt.Errorf("wire: frame length %d below header", ln)
	}
	if _, err := io.ReadFull(rd.r, rd.hdr[headerLen:]); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if rd.hdr[headerLen] != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, rd.hdr[headerLen])
	}
	t := FrameType(rd.hdr[headerLen+1])
	if t < FrameHello || t > FrameError {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadFrameType, uint8(t))
	}
	need := int(ln) - 2
	if cap(rd.buf) < need {
		rd.buf = make([]byte, need)
	}
	rd.buf = rd.buf[:need]
	if _, err := io.ReadFull(rd.r, rd.buf); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return t, rd.buf, nil
}
