package wire

import (
	"encoding/hex"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"

	"divot/internal/attest"
)

// apiDocPath is the wire-protocol reference. The attest package pins the
// JSON envelope examples (<!-- api-golden: ... --> tags); this test pins the
// binary stream's examples under its own tag namespace — the wire types
// cannot live in attest's golden table because wire imports attest.
const apiDocPath = "../../docs/API.md"

var wireGoldenTag = regexp.MustCompile(`<!--\s*wire-golden(-frame)?:\s*([a-z0-9-]+)\s*-->`)

// extractWireBlocks returns name -> fenced block body for every wire-golden
// tag. JSON-tagged blocks must be ```json fences, frame-tagged ones ```text.
func extractWireBlocks(t *testing.T, doc string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		m := wireGoldenTag.FindStringSubmatch(lines[i])
		if m == nil {
			continue
		}
		name, fence := m[2], "```json"
		if m[1] == "-frame" {
			fence = "```text"
		}
		j := i + 1
		for j < len(lines) && !strings.HasPrefix(lines[j], fence) {
			j++
		}
		if j == len(lines) {
			t.Fatalf("API.md: wire tag %q has no %s block after it", name, fence)
		}
		var body []string
		for j++; j < len(lines) && !strings.HasPrefix(lines[j], "```"); j++ {
			body = append(body, lines[j])
		}
		if _, dup := out[name]; dup {
			t.Fatalf("API.md: wire tag %q appears twice", name)
		}
		out[name] = strings.Join(body, "\n")
	}
	return out
}

// docEvent is the example event the doc's frame hexdump encodes.
var docEvent = attest.Event{
	Seq: 17, Kind: "alert", Link: "dimm1", Side: "cpu", Round: 2204, Score: 0.41,
}

// TestAPIDocWireGolden pins every wire example in docs/API.md to the codec:
// the JSON blocks must byte-match json.MarshalIndent of the wire structs,
// and the frame hexdump must byte-match the actual encoder output for the
// documented event. Changing the frame layout or a control payload field
// fails here until the reference is updated.
func TestAPIDocWireGolden(t *testing.T) {
	raw, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("reading %s: %v", apiDocPath, err)
	}
	blocks := extractWireBlocks(t, string(raw))

	jsonExamples := map[string]any{
		"stream-subscribe": Subscribe{
			Links: []string{"dimm0", "dimm1"},
			Kinds: []string{"alert", "gate"},
			After: map[string]uint64{"dimm0": 41, "dimm1": 12},
		},
		"stream-hello": Hello{Links: []string{"dimm0", "dimm1"}},
		"stream-gap":   Gap{Link: "dimm1", Resume: 12, Oldest: 172},
		"stream-error": ErrorInfo{Code: "unavailable", Message: "daemon shutting down"},
	}
	for name, v := range jsonExamples {
		block, ok := blocks[name]
		if !ok {
			t.Errorf("API.md is missing a block tagged <!-- wire-golden: %s -->", name)
			continue
		}
		want, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatalf("marshalling example %q: %v", name, err)
		}
		if got := strings.TrimSpace(block); got != string(want) {
			t.Errorf("API.md wire example %q drifted from the codec.\n--- doc:\n%s\n--- codec:\n%s",
				name, got, want)
		}
	}

	frame := AppendEventFrame(nil, docEvent)
	block, ok := blocks["event-frame"]
	if !ok {
		t.Fatal("API.md is missing the <!-- wire-golden-frame: event-frame --> hexdump")
	}
	if got, want := strings.TrimSpace(block), strings.TrimSpace(hex.Dump(frame)); got != want {
		t.Errorf("API.md frame hexdump drifted from the encoder.\n--- doc:\n%s\n--- encoder:\n%s",
			got, want)
	}
	// And the doc's prose claim about the example's size must hold.
	if !strings.Contains(string(raw), "encodes in 29 bytes") || len(frame) != 29 {
		t.Errorf("documented frame size 29 vs encoder %d bytes — update the prose", len(frame))
	}

	// Round-trip the documented frame for good measure: what the doc shows
	// must decode back to the documented event.
	typ, payload, n, err := DecodeFrame(frame)
	if err != nil || typ != FrameEvent || n != len(frame) {
		t.Fatalf("documented frame does not decode: type=%v n=%d err=%v", typ, n, err)
	}
	ev, err := DecodeEvent(payload)
	if err != nil || ev != docEvent {
		t.Fatalf("documented frame decodes to %+v (%v), want %+v", ev, err, docEvent)
	}
}
