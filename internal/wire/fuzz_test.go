package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeFrame is the CI fuzz target for the binary stream decoder (the
// fuzz-short job runs it on every push). Invariants on arbitrary bytes:
//
//   - DecodeFrame and DecodeEvent never panic — torn frames, hostile length
//     prefixes, and bad versions are errors, not crashes.
//   - An oversized length prefix is rejected before allocation.
//   - Anything that decodes as an event re-encodes to a frame that decodes
//     back to the identical event (a successful decode names a canonical
//     value, not a lucky parse).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, FrameHeartbeat, nil))
	f.Add(AppendFrame(nil, FrameHello, []byte(`{"links":["dimm0"]}`)))
	for _, ev := range sampleEvents() {
		f.Add(AppendEventFrame(nil, ev))
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, Version, byte(FrameEvent)}) // hostile length
	f.Add([]byte{0, 0, 0, 2, Version + 7, byte(FrameEvent)})         // future version

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < headerLen+2 || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
		}
		if typ != FrameEvent {
			return
		}
		ev, err := DecodeEvent(payload)
		if err != nil {
			return
		}
		again := AppendEventFrame(nil, ev)
		typ2, payload2, _, err := DecodeFrame(again)
		if err != nil || typ2 != FrameEvent {
			t.Fatalf("re-encoded event frame failed to decode: %v", err)
		}
		ev2, err := DecodeEvent(payload2)
		if err != nil {
			t.Fatalf("re-encoded event failed to decode: %v", err)
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("event not canonical: %+v re-encoded to %+v", ev, ev2)
		}
		// The reader must agree with the slice decoder.
		rtyp, rpayload, rerr := NewReader(bytes.NewReader(data[:n])).Next()
		if rerr != nil || rtyp != typ || !bytes.Equal(rpayload, payload) {
			t.Fatalf("Reader disagrees with DecodeFrame: %v %v", rtyp, rerr)
		}
	})
}
