package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"divot/internal/attest"
	"divot/internal/telemetry"
)

// Event payload encoding. Every event carries a kind, a link id, and a
// sequence number; everything else is optional behind a flags byte:
//
//	flags   byte            which optional fields follow
//	kind    byte            telemetry.EventKind code, or kindEscape + string
//	link    uvarint + bytes
//	seq     uvarint
//	round   uvarint         flagRound
//	side    uvarint + bytes flagSide
//	score   float64 BE      flagScore
//	from    uvarint + bytes flagFrom
//	to      uvarint + bytes flagTo
//	detail  uvarint + bytes flagDetail
//
// A round/alert event encodes in ~20-60 bytes against ~120-200 as SSE JSON,
// and decoding is a straight scan with no reflection.
const (
	flagRound  = 1 << 0
	flagSide   = 1 << 1
	flagScore  = 1 << 2
	flagFrom   = 1 << 3
	flagTo     = 1 << 4
	flagDetail = 1 << 5
	// flagsKnown masks the bits this version assigns; a set bit outside it is
	// an encoding from the future and rejected (the frame version did not
	// move, so it can only be corruption).
	flagsKnown = flagRound | flagSide | flagScore | flagFrom | flagTo | flagDetail
)

// kindEscape in the kind byte means a string kind name follows — events whose
// kind postdates this codec still travel, just less compactly.
const kindEscape = 0xFF

// kindNames maps kind codes to the wire names (the same names the JSON feed
// uses); kindCodes is its inverse.
var (
	kindNames [telemetry.EventKindCount]string
	kindCodes = make(map[string]byte, telemetry.EventKindCount)
)

func init() {
	for k := telemetry.EventKind(0); k < telemetry.EventKindCount; k++ {
		kindNames[k] = k.String()
		kindCodes[k.String()] = byte(k)
	}
}

// AppendEventFrame appends one complete Event frame (header included) to dst.
func AppendEventFrame(dst []byte, ev attest.Event) []byte {
	// Reserve the length prefix, encode, then backfill it.
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, Version, byte(FrameEvent))
	dst = appendEvent(dst, ev)
	n := len(dst) - start - headerLen
	if n > MaxFrameLen {
		panic("wire: event frame exceeds MaxFrameLen")
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(n))
	return dst
}

// appendEvent appends the binary event payload.
func appendEvent(dst []byte, ev attest.Event) []byte {
	var flags byte
	if ev.Round != 0 {
		flags |= flagRound
	}
	if ev.Side != "" {
		flags |= flagSide
	}
	if ev.Score != 0 {
		flags |= flagScore
	}
	if ev.From != "" {
		flags |= flagFrom
	}
	if ev.To != "" {
		flags |= flagTo
	}
	if ev.Detail != "" {
		flags |= flagDetail
	}
	dst = append(dst, flags)
	if code, ok := kindCodes[ev.Kind]; ok {
		dst = append(dst, code)
	} else {
		dst = append(dst, kindEscape)
		dst = appendString(dst, ev.Kind)
	}
	dst = appendString(dst, ev.Link)
	dst = binary.AppendUvarint(dst, ev.Seq)
	if flags&flagRound != 0 {
		dst = binary.AppendUvarint(dst, ev.Round)
	}
	if flags&flagSide != 0 {
		dst = appendString(dst, ev.Side)
	}
	if flags&flagScore != 0 {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(ev.Score))
	}
	if flags&flagFrom != 0 {
		dst = appendString(dst, ev.From)
	}
	if flags&flagTo != 0 {
		dst = appendString(dst, ev.To)
	}
	if flags&flagDetail != 0 {
		dst = appendString(dst, ev.Detail)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeEvent parses a FrameEvent payload. It never panics on hostile input:
// every length is bounds-checked against what remains, unknown flag bits and
// trailing garbage are rejected.
func DecodeEvent(p []byte) (attest.Event, error) {
	var ev attest.Event
	if len(p) < 2 {
		return ev, fmt.Errorf("wire: event payload too short (%d bytes)", len(p))
	}
	flags := p[0]
	if flags&^byte(flagsKnown) != 0 {
		return ev, fmt.Errorf("wire: event flags %#x carry unknown bits", flags)
	}
	p = p[1:]
	switch code := p[0]; {
	case code == kindEscape:
		var err error
		if ev.Kind, p, err = readString(p[1:]); err != nil {
			return ev, fmt.Errorf("wire: event kind: %w", err)
		}
	case int(code) < len(kindNames):
		ev.Kind = kindNames[code]
		p = p[1:]
	default:
		return ev, fmt.Errorf("wire: unknown event kind code %d", p[0])
	}
	var err error
	if ev.Link, p, err = readString(p); err != nil {
		return ev, fmt.Errorf("wire: event link: %w", err)
	}
	if ev.Seq, p, err = readUvarint(p); err != nil {
		return ev, fmt.Errorf("wire: event seq: %w", err)
	}
	if flags&flagRound != 0 {
		if ev.Round, p, err = readUvarint(p); err != nil {
			return ev, fmt.Errorf("wire: event round: %w", err)
		}
	}
	if flags&flagSide != 0 {
		if ev.Side, p, err = readString(p); err != nil {
			return ev, fmt.Errorf("wire: event side: %w", err)
		}
	}
	if flags&flagScore != 0 {
		if len(p) < 8 {
			return ev, fmt.Errorf("wire: event score truncated")
		}
		ev.Score = math.Float64frombits(binary.BigEndian.Uint64(p))
		p = p[8:]
	}
	if flags&flagFrom != 0 {
		if ev.From, p, err = readString(p); err != nil {
			return ev, fmt.Errorf("wire: event from: %w", err)
		}
	}
	if flags&flagTo != 0 {
		if ev.To, p, err = readString(p); err != nil {
			return ev, fmt.Errorf("wire: event to: %w", err)
		}
	}
	if flags&flagDetail != 0 {
		if ev.Detail, p, err = readString(p); err != nil {
			return ev, fmt.Errorf("wire: event detail: %w", err)
		}
	}
	if len(p) != 0 {
		return ev, fmt.Errorf("wire: %d trailing bytes after event", len(p))
	}
	return ev, nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, p[n:], nil
}

func readString(p []byte) (string, []byte, error) {
	n, rest, err := readUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("string length %d exceeds remaining %d bytes", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}
