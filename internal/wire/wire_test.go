package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"divot/internal/attest"
)

func sampleEvents() []attest.Event {
	return []attest.Event{
		{Seq: 1, Kind: "round", Link: "dimm0"},
		{Seq: 17, Kind: "alert", Link: "dimm1", Side: "cpu", Round: 2204, Score: 0.41,
			To: "auth_mismatch", Detail: "score 0.41 under threshold"},
		{Seq: 18, Kind: "reactor", Link: "dimm1", Round: 2204, From: "normal", To: "quarantine"},
		{Seq: math.MaxUint64, Kind: "health", Link: strings.Repeat("x", 300),
			Score: math.Inf(-1), Detail: strings.Repeat("d", 1000)},
		{Seq: 2, Kind: "from-the-future", Link: "a"}, // unknown kind → string escape
		{Seq: 3, Kind: "gate", Link: ""},             // empty link id still round-trips
	}
}

// TestEventRoundTrip: encode → frame-decode → event-decode reproduces every
// field exactly, including extremes and unknown kinds.
func TestEventRoundTrip(t *testing.T) {
	for _, want := range sampleEvents() {
		frame := AppendEventFrame(nil, want)
		typ, payload, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame(%+v): %v", want, err)
		}
		if typ != FrameEvent || n != len(frame) {
			t.Fatalf("DecodeFrame type=%v n=%d, want event/%d", typ, n, len(frame))
		}
		got, err := DecodeEvent(payload)
		if err != nil {
			t.Fatalf("DecodeEvent(%+v): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestEventEncodingIsCompact: the binary form of a typical alert must be
// several times smaller than its JSON rendering — that is the point.
func TestEventEncodingIsCompact(t *testing.T) {
	ev := attest.Event{Seq: 17, Kind: "alert", Link: "dimm1", Side: "cpu",
		Round: 2204, Score: 0.41, To: "auth_mismatch"}
	frame := AppendEventFrame(nil, ev)
	if len(frame) > 64 {
		t.Errorf("alert event frame is %d bytes, want <= 64", len(frame))
	}
}

// TestDecodeFrameRejects covers the decoder's refusal paths: torn frames,
// oversized length prefixes, bad versions, unknown types.
func TestDecodeFrameRejects(t *testing.T) {
	good := AppendFrame(nil, FrameHeartbeat, nil)

	for i := 1; i < len(good); i++ {
		if _, _, _, err := DecodeFrame(good[:i]); !errors.Is(err, ErrShortFrame) {
			t.Errorf("truncated at %d: err = %v, want ErrShortFrame", i, err)
		}
	}

	huge := binary.BigEndian.AppendUint32(nil, MaxFrameLen+1)
	huge = append(huge, Version, byte(FrameEvent))
	if _, _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooLong) {
		t.Errorf("oversized length: err = %v, want ErrFrameTooLong", err)
	}

	tiny := binary.BigEndian.AppendUint32(nil, 1) // length below version+type
	tiny = append(tiny, Version)
	if _, _, _, err := DecodeFrame(tiny); err == nil || errors.Is(err, ErrShortFrame) {
		t.Errorf("undersized length: err = %v, want terminal error", err)
	}

	badVer := append([]byte(nil), good...)
	badVer[4] = Version + 1
	if _, _, _, err := DecodeFrame(badVer); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v, want ErrBadVersion", err)
	}

	badType := append([]byte(nil), good...)
	badType[5] = 0
	if _, _, _, err := DecodeFrame(badType); !errors.Is(err, ErrBadFrameType) {
		t.Errorf("bad type: err = %v, want ErrBadFrameType", err)
	}
}

// TestReaderStream: a Reader consumes a back-to-back frame sequence and
// distinguishes clean EOF from a mid-frame cut.
func TestReaderStream(t *testing.T) {
	events := sampleEvents()
	var stream []byte
	stream = AppendFrame(stream, FrameHello, []byte(`{"links":["a"]}`))
	for _, ev := range events {
		stream = AppendEventFrame(stream, ev)
		stream = AppendFrame(stream, FrameHeartbeat, nil)
	}
	stream = AppendFrame(stream, FrameShutdown, nil)

	rd := NewReader(bytes.NewReader(stream))
	typ, payload, err := rd.Next()
	if err != nil || typ != FrameHello || string(payload) != `{"links":["a"]}` {
		t.Fatalf("first frame = %v %q %v, want hello", typ, payload, err)
	}
	var got []attest.Event
	for {
		typ, payload, err = rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if typ == FrameShutdown {
			break
		}
		if typ == FrameHeartbeat {
			continue
		}
		ev, err := DecodeEvent(payload)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("streamed events drifted:\n got %+v\nwant %+v", got, events)
	}
	if _, _, err := rd.Next(); err != io.EOF {
		t.Errorf("after shutdown: err = %v, want io.EOF", err)
	}

	// A stream cut mid-frame is not a clean end.
	rd = NewReader(bytes.NewReader(stream[:len(stream)-3]))
	for {
		if _, _, err = rd.Next(); err != nil {
			break
		}
	}
	if err != io.ErrUnexpectedEOF {
		t.Errorf("torn stream: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestParseSubscribeRequest covers both handshake forms and their precedence.
func TestParseSubscribeRequest(t *testing.T) {
	r := httptest.NewRequest("GET",
		"/v1/stream?links=a,b&links=c&kinds=alert,gate&after=a:5&after=b:9", nil)
	sub, err := ParseSubscribeRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	want := Subscribe{Links: []string{"a", "b", "c"}, Kinds: []string{"alert", "gate"},
		After: map[string]uint64{"a": 5, "b": 9}}
	if !reflect.DeepEqual(sub, want) {
		t.Errorf("query form = %+v, want %+v", sub, want)
	}

	// A JSON body replaces the query form wholesale.
	body := `{"links":["x"],"after":{"x":3}}`
	r = httptest.NewRequest("GET", "/v1/stream?links=a", strings.NewReader(body))
	sub, err = ParseSubscribeRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	want = Subscribe{Links: []string{"x"}, After: map[string]uint64{"x": 3}}
	if !reflect.DeepEqual(sub, want) {
		t.Errorf("body form = %+v, want %+v", sub, want)
	}

	for _, bad := range []string{
		"/v1/stream?after=a",    // no seq
		"/v1/stream?after=a:",   // empty seq
		"/v1/stream?after=:5",   // empty link
		"/v1/stream?after=a:x9", // non-numeric
		"/v1/stream?after=a:-1", // negative
	} {
		if _, err := ParseSubscribeRequest(httptest.NewRequest("GET", bad, nil)); err == nil {
			t.Errorf("ParseSubscribeRequest(%q) accepted malformed input", bad)
		}
	}
	r = httptest.NewRequest("GET", "/v1/stream", strings.NewReader("{bad json"))
	if _, err := ParseSubscribeRequest(r); err == nil {
		t.Error("malformed body accepted")
	}
}
