// Package pool provides the bounded, deterministic worker fan-out used by
// every parallel layer of the reproduction: ETS phase bins inside one iTDR
// measurement, rigs of an experiment fleet, wires of a multi-wire bus, and
// links of a monitored system.
//
// The pool makes no ordering promises about *execution*; determinism is a
// contract on the tasks instead: fn(i) must depend only on i (each task
// deriving its randomness from its own labelled rng child and writing only to
// its own slot of a pre-sized result slice). Under that contract the combined
// result is bit-identical at any worker count, which is what the repo's
// parallelism-invariance tests assert.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged. Every
// Parallelism field in the repo funnels through this, so "0" uniformly means
// "use the machine".
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes fn(worker, i) for every i in [0, n) across at most `workers`
// goroutines. Tasks are handed out dynamically (an atomic cursor), so uneven
// task costs still balance; worker identifies which goroutine runs the task
// (0 <= worker < effective workers) so callers can reuse per-worker scratch
// buffers without locking. With workers <= 1 (or n <= 1) everything runs
// inline on the calling goroutine — the exact sequential path, no goroutines
// spawned.
func Run(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	// A task panic must reach the caller as it would on the inline path, not
	// kill the process from an anonymous goroutine. The first panic value is
	// kept and re-raised after all workers drain.
	var panicked atomic.Pointer[any]
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
}

// Split divides a total worker budget between `tasks` outer tasks and the
// inner work each task fans out itself: outer = min(total, tasks) tasks run
// concurrently, each with inner = total/outer workers for its own fan-out.
// This is the two-level schedule used by fleet cold calibration (across
// links × within links): with more links than workers every worker runs
// whole links (inner 1), with few links the budget flows inside them.
// total is normalized through Workers first, so <= 0 means the machine.
func Split(total, tasks int) (outer, inner int) {
	total = Workers(total)
	if tasks < 1 {
		tasks = 1
	}
	outer = total
	if outer > tasks {
		outer = tasks
	}
	inner = total / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}
