package pool

import "testing"

func TestSplit(t *testing.T) {
	cases := []struct {
		total, tasks, outer, inner int
	}{
		{1, 1000, 1, 1},   // one core: everything sequential
		{8, 1000, 8, 1},   // more links than workers: whole links per worker
		{8, 2, 2, 4},      // few links: budget flows inside them
		{8, 8, 8, 1},      // exact fit
		{5, 3, 3, 1},      // remainder is dropped, never oversubscribed
		{4, 0, 1, 4},      // degenerate task count clamps to one task
		{16, 1, 1, 16},    // single link gets the whole budget
	}
	for _, c := range cases {
		outer, inner := Split(c.total, c.tasks)
		if outer != c.outer || inner != c.inner {
			t.Errorf("Split(%d, %d) = (%d, %d), want (%d, %d)",
				c.total, c.tasks, outer, inner, c.outer, c.inner)
		}
		if outer*inner > Workers(c.total) {
			t.Errorf("Split(%d, %d) oversubscribes: %d*%d > %d",
				c.total, c.tasks, outer, inner, Workers(c.total))
		}
	}
}
