package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestRunCoversEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		counts := make([]atomic.Int32, n)
		Run(n, workers, func(_, i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunResultsIndependentOfWorkerCount(t *testing.T) {
	// The determinism contract: per-slot writes keyed by i produce identical
	// results at any worker count.
	compute := func(workers int) []int {
		out := make([]int, 200)
		Run(len(out), workers, func(_, i int) { out[i] = i * i })
		return out
	}
	want := compute(1)
	for _, workers := range []int{2, 3, 16} {
		got := compute(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunWorkerIndexBounded(t *testing.T) {
	const n, workers = 50, 4
	var bad atomic.Int32
	Run(n, workers, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d tasks saw out-of-range worker ids", bad.Load())
	}
}

func TestRunInlineWhenSingleWorker(t *testing.T) {
	// workers=1 must run on the calling goroutine in index order.
	var order []int
	Run(5, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("inline run reported worker %d", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v", order)
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	ran := false
	Run(0, 8, func(_, _ int) { ran = true })
	if ran {
		t.Error("Run(0, ...) executed a task")
	}
}

func TestRunPropagatesWorkerPanic(t *testing.T) {
	// A panicking task must surface on the caller like the sequential path
	// would, not kill the process from a worker goroutine.
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	Run(100, 4, func(_, i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("Run returned instead of panicking")
}
