package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, w *WAL) (recs [][]byte, skipped int64) {
	t.Helper()
	skipped, err := w.Replay(func(p []byte) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, skipped
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf(`{"i":%d,"pad":"%032d"}`, i, i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, skipped := collect(t, w)
	if skipped != 0 {
		t.Fatalf("clean log reported %d skipped bytes", skipped)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: everything still there.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if w2.TruncatedBytes() != 0 {
		t.Fatalf("clean reopen truncated %d bytes", w2.TruncatedBytes())
	}
	got, _ = collect(t, w2)
	if len(got) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(want))
	}
}

func TestWALRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 256, MaxSegments: 3})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	rec := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 50; i++ {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if n := w.Segments(); n != 3 {
		t.Fatalf("retained %d segments, want 3 (compaction bound)", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d files on disk, want 3", len(entries))
	}
	// Replay covers only what retention kept — bounded, not unbounded.
	recs, _ := collect(t, w)
	if len(recs) == 0 || len(recs) >= 50 {
		t.Fatalf("replayed %d records; want a bounded, non-empty suffix", len(recs))
	}
}

// TestWALTornTailRecovered is the kill -9 contract: a partial record at the
// live segment's tail is truncated away on reopen and the log keeps working.
func TestWALTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Tear the tail: append half a record's worth of garbage.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x0b, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer w2.Close()
	if w2.TruncatedBytes() != 6 {
		t.Fatalf("truncated %d bytes, want 6", w2.TruncatedBytes())
	}
	if err := w2.Append([]byte("after-crash")); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	recs, skipped := collect(t, w2)
	if skipped != 0 {
		t.Fatalf("replay skipped %d bytes after tail truncation", skipped)
	}
	if len(recs) != 11 {
		t.Fatalf("replayed %d records, want 11 (10 pre-crash + 1 post)", len(recs))
	}
	if string(recs[10]) != "after-crash" {
		t.Fatalf("last record = %q", recs[10])
	}
}

// TestWALMidSegmentCorruption: a bit flip inside a sealed segment loses the
// rest of that segment (skipped bytes reported) but later segments replay.
func TestWALMidSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 300, MaxSegments: 10})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	rec := bytes.Repeat([]byte("y"), 80)
	for i := 0; i < 12; i++ {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() < 3 {
		t.Fatalf("want ≥3 segments, got %d", w.Segments())
	}
	// Flip a payload byte in the middle of the first segment.
	path := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[recordHeader+len(rec)+recordHeader+10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, skipped := collect(t, w)
	if skipped == 0 {
		t.Fatal("corruption went unreported")
	}
	if len(recs) >= 12 || len(recs) == 0 {
		t.Fatalf("replayed %d records, want a partial set", len(recs))
	}
	w.Close()
}

func TestWALRejectsOversizeRecord(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, maxRecordLen+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}
