package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	payload := []byte(`{"id":"ddr4-0","rounds":42}`)
	raw, err := EncodeSnapshot("spec-abc", payload)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, err := DecodeSnapshot(raw, "spec-abc")
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %s, want %s", got, payload)
	}
}

func TestSnapshotStaleSpecHash(t *testing.T) {
	raw, err := EncodeSnapshot("spec-old", []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeSnapshot(raw, "spec-new")
	if !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("err = %v, want ErrStaleSnapshot", err)
	}
}

func TestSnapshotBitFlipDetected(t *testing.T) {
	raw, err := EncodeSnapshot("spec", []byte(`{"score":0.987654321}`))
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		flipped := make([]byte, len(raw))
		copy(flipped, raw)
		flipped[i] ^= 0x01
		if _, err := DecodeSnapshot(flipped, "spec"); err == nil {
			// A flip may survive only by landing in the spec-hash field and
			// colliding with... nothing: every field participates in either
			// the JSON structure, the checksum, or the hash comparison.
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestSnapshotRejectsNonJSONPayload(t *testing.T) {
	if _, err := EncodeSnapshot("spec", []byte{0xff, 0xfe}); err == nil {
		t.Fatal("binary payload accepted")
	}
}

func TestDirBackendSnapshotLifecycle(t *testing.T) {
	d, err := OpenDir(t.TempDir(), DirOptions{})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer d.Close()

	if _, err := d.LoadSnapshot("bus0", "h1"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing snapshot: err = %v, want ErrNoSnapshot", err)
	}
	payload := []byte(`{"rounds":7}`)
	if err := d.SaveSnapshot("bus0", "h1", payload); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	got, err := d.LoadSnapshot("bus0", "h1")
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %s, want %s", got, payload)
	}
	if _, err := d.LoadSnapshot("bus0", "h2"); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("spec change: err = %v, want ErrStaleSnapshot", err)
	}

	// Damage the file on disk: load must refuse, not trust.
	path := d.snapPath("bus0")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadSnapshot("bus0", "h1"); err == nil {
		t.Fatal("damaged snapshot accepted")
	}
}

func TestDirBackendEscapesBusIDs(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root, DirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id := "../escape/bus"
	if err := d.SaveSnapshot(id, "h", []byte(`{}`)); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "snapshots")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(root), "escape")); !os.IsNotExist(err) {
		t.Fatal("bus id traversed out of the snapshots directory")
	}
	if _, err := d.LoadSnapshot(id, "h"); err != nil {
		t.Fatalf("LoadSnapshot of escaped id: %v", err)
	}
}

func TestMemoryBackendMatchesSemantics(t *testing.T) {
	m := NewMemory()
	if _, err := m.LoadSnapshot("b", "h"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	if err := m.SaveSnapshot("b", "h", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadSnapshot("b", "other"); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("err = %v, want ErrStaleSnapshot", err)
	}
	m.CorruptSnapshot("b")
	if _, err := m.LoadSnapshot("b", "h"); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}

	for i := 0; i < 5; i++ {
		if err := m.AppendHistory([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m.TearHistoryTail(2, 13)
	var n int
	skipped, err := m.ReplayHistory(func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || skipped != 13 {
		t.Fatalf("replayed %d records with %d skipped, want 3 and 13", n, skipped)
	}
}
