// Package store is the daemon's persistence layer: validated enrollment
// snapshots and a segmented write-ahead log, behind a small Backend interface
// so tests run on an in-memory implementation and production on an embedded
// file backend (Dir).
//
// Crash-safety contract:
//
//   - Snapshots are written atomically (temp file + rename) and carry a
//     sha256 over their payload plus the spec hash they were taken under. A
//     load that fails any check returns a typed error — the caller falls back
//     to cold calibration, never to a half-trusted snapshot.
//   - The WAL frames every record as length + CRC32 + payload inside
//     size-bounded segment files. A crash can tear at most the tail of the
//     newest segment; recovery detects the torn record, truncates it away,
//     and keeps appending — torn tails are expected, not fatal. Old segments
//     are deleted once the retention bound is exceeded (compaction), so the
//     log never grows without bound the way a plain JSONL file does.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Record framing: a fixed 8-byte header — payload length then CRC32 (IEEE) of
// the payload, both little-endian uint32 — followed by the payload bytes.
const recordHeader = 8

// maxRecordLen rejects absurd lengths while scanning: a corrupt header must
// not make recovery allocate gigabytes. 16 MiB comfortably exceeds any record
// the daemon writes (history samples and audit lines are <1 KiB).
const maxRecordLen = 16 << 20

// errTornRecord marks the scan position where a segment stops being
// trustworthy: a truncated header, a truncated payload, a CRC mismatch, or a
// nonsense length.
var errTornRecord = errors.New("store: torn or corrupt WAL record")

// WALOptions tunes a write-ahead log. The zero value picks the defaults.
type WALOptions struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// MaxSegments bounds retained segment files; the oldest sealed segments
	// are deleted past it (default 8, minimum 2 — the live segment is never
	// deleted).
	MaxSegments int
	// SyncEvery fsyncs the live segment every n appends (default 64;
	// negative disables periodic sync — rotation and Close still sync).
	SyncEvery int
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 8
	}
	if o.MaxSegments < 2 {
		o.MaxSegments = 2
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 64
	}
	return o
}

// WAL is a segmented, checksummed, length-prefixed append log. Safe for
// concurrent use.
type WAL struct {
	dir  string
	opts WALOptions

	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer // batches record writes; Sync/rotate/Replay flush
	size      int64         // bytes in the live segment, buffered writes included
	segs      []int         // retained segment indices, ascending; last is live
	sinceSync int
	truncated int64 // torn-tail bytes dropped at Open
	hdr       [recordHeader]byte
}

// segName renders a segment file name; lexicographic order is append order.
func segName(i int) string { return fmt.Sprintf("seg-%08d.wal", i) }

// OpenWAL opens (creating if needed) the segmented log in dir. The newest
// segment is scanned for a torn tail, which is truncated away — recovery
// after kill -9 is the normal path, not an error. Earlier segments are left
// untouched; replay skips any mid-segment corruption they may carry.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating WAL dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing WAL dir: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var i int
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.wal", &i); err == nil {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	w := &WAL{dir: dir, opts: opts, segs: segs}
	if len(segs) == 0 {
		if err := w.openSegment(1); err != nil {
			return nil, err
		}
		w.segs = []int{1}
		return w, nil
	}
	// Recover the live (newest) segment: find the last whole, checksummed
	// record and cut everything after it.
	live := segs[len(segs)-1]
	path := filepath.Join(dir, segName(live))
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading live WAL segment: %w", err)
	}
	valid := validPrefix(raw)
	if valid < int64(len(raw)) {
		w.truncated = int64(len(raw)) - valid
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening live WAL segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.size = valid
	return w, nil
}

// openSegment creates segment i and makes it live.
func (w *WAL) openSegment(i int) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(i)),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating WAL segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.size = 0
	return nil
}

// validPrefix returns the length of the longest prefix of data made of whole,
// checksummed records.
func validPrefix(data []byte) int64 {
	var off int64
	for {
		_, n, err := scanRecord(data[off:])
		if err != nil {
			return off
		}
		off += int64(n)
	}
}

// scanRecord decodes one record from the head of data, returning the payload
// and the total bytes consumed. io.EOF means a clean end; errTornRecord means
// the bytes at the head are not a whole valid record.
func scanRecord(data []byte) (payload []byte, n int, err error) {
	if len(data) == 0 {
		return nil, 0, io.EOF
	}
	if len(data) < recordHeader {
		return nil, 0, errTornRecord
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if length > maxRecordLen {
		return nil, 0, errTornRecord
	}
	end := recordHeader + int(length)
	if len(data) < end {
		return nil, 0, errTornRecord
	}
	payload = data[recordHeader:end]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, errTornRecord
	}
	return payload, end, nil
}

// TruncatedBytes reports how many torn-tail bytes Open discarded.
func (w *WAL) TruncatedBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncated
}

// Segments reports how many segment files are currently retained.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// Append writes one record. Rotation and retention run inline when the live
// segment fills up.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > maxRecordLen {
		return fmt.Errorf("store: WAL record of %d bytes exceeds the %d byte bound", len(payload), maxRecordLen)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: WAL is closed")
	}
	if w.size > 0 && w.size+recordHeader+int64(len(payload)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	w.size += recordHeader + int64(len(payload))
	w.sinceSync++
	if w.opts.SyncEvery > 0 && w.sinceSync >= w.opts.SyncEvery {
		w.sinceSync = 0
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// syncLocked flushes the buffer and fsyncs the live segment.
func (w *WAL) syncLocked() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: flushing WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	return nil
}

// rotateLocked seals the live segment, opens the next one, and deletes the
// oldest sealed segments beyond the retention bound.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: sealing WAL segment: %w", err)
	}
	next := w.segs[len(w.segs)-1] + 1
	if err := w.openSegment(next); err != nil {
		return err
	}
	w.segs = append(w.segs, next)
	w.sinceSync = 0
	for len(w.segs) > w.opts.MaxSegments {
		os.Remove(filepath.Join(w.dir, segName(w.segs[0]))) //nolint:errcheck // best-effort compaction
		w.segs = w.segs[1:]
	}
	return nil
}

// Sync flushes the live segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.sinceSync = 0
	return w.syncLocked()
}

// Close syncs and closes the live segment. The WAL rejects appends afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	w.bw = nil
	return err
}

// Replay streams every retained record, oldest first, into fn. Mid-segment
// corruption ends that segment's replay (the rest of it cannot be framed
// reliably) and moves on to the next segment; the skipped byte count is
// returned. fn returning an error aborts the replay with that error. Replay
// may run on an open WAL — records already appended are visible.
func (w *WAL) Replay(fn func(payload []byte) error) (skipped int64, err error) {
	w.mu.Lock()
	if w.bw != nil {
		if ferr := w.bw.Flush(); ferr != nil {
			w.mu.Unlock()
			return 0, fmt.Errorf("store: flushing WAL before replay: %w", ferr)
		}
	}
	segs := make([]int, len(w.segs))
	copy(segs, w.segs)
	w.mu.Unlock()
	for _, i := range segs {
		raw, rerr := os.ReadFile(filepath.Join(w.dir, segName(i)))
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // compacted away while we replayed
			}
			return skipped, fmt.Errorf("store: reading WAL segment: %w", rerr)
		}
		off := 0
		for {
			payload, n, serr := scanRecord(raw[off:])
			if serr != nil {
				if errors.Is(serr, errTornRecord) {
					skipped += int64(len(raw) - off)
				}
				break
			}
			off += n
			if ferr := fn(payload); ferr != nil {
				return skipped, ferr
			}
		}
	}
	return skipped, nil
}
