package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotVersion guards against silently decoding incompatible envelopes.
const snapshotVersion = 1

// Typed load failures. Every one of them means the same thing to the caller
// — do not trust the snapshot, calibrate cold — but they are distinguished so
// metrics and logs can say why.
var (
	// ErrNoSnapshot: nothing persisted for this bus.
	ErrNoSnapshot = errors.New("store: no snapshot")
	// ErrCorruptSnapshot: the envelope is unreadable or its checksum fails.
	ErrCorruptSnapshot = errors.New("store: corrupt snapshot")
	// ErrStaleSnapshot: the snapshot was taken under a different spec hash
	// (seed or engine/line configuration changed since it was written).
	ErrStaleSnapshot = errors.New("store: stale snapshot")
)

// snapshotEnvelope is the on-disk form: a versioned wrapper carrying the
// payload verbatim plus a sha256 over the payload bytes and the spec hash the
// snapshot was taken under.
type snapshotEnvelope struct {
	Version  int             `json:"version"`
	SpecHash string          `json:"spec_hash"`
	SHA256   string          `json:"sha256"`
	Payload  json.RawMessage `json:"payload"`
}

// EncodeSnapshot wraps a JSON payload in the checksummed envelope.
func EncodeSnapshot(specHash string, payload []byte) ([]byte, error) {
	if !json.Valid(payload) {
		return nil, fmt.Errorf("store: snapshot payload is not valid JSON")
	}
	sum := sha256.Sum256(payload)
	return json.Marshal(snapshotEnvelope{
		Version:  snapshotVersion,
		SpecHash: specHash,
		SHA256:   hex.EncodeToString(sum[:]),
		Payload:  json.RawMessage(payload),
	})
}

// DecodeSnapshot validates an envelope — version, checksum, spec hash — and
// returns its payload. Failures come back as ErrCorruptSnapshot or
// ErrStaleSnapshot (wrapped with detail).
func DecodeSnapshot(raw []byte, wantSpecHash string) ([]byte, error) {
	var env snapshotEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if env.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: envelope version %d, want %d", ErrCorruptSnapshot, env.Version, snapshotVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorruptSnapshot)
	}
	if env.SpecHash != wantSpecHash {
		return nil, fmt.Errorf("%w: spec hash %.12s…, want %.12s…", ErrStaleSnapshot, env.SpecHash, wantSpecHash)
	}
	return env.Payload, nil
}

// writeFileAtomic writes data to path via a temp file in the same directory
// plus rename, fsyncing both the file and the directory, so a crash leaves
// either the old snapshot or the new one — never a torn mix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after the rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort directory durability
		d.Close()
	}
	return nil
}
