package store

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"
)

// Backend is the daemon's durable-state surface: per-bus enrollment
// snapshots, the score/IIP history log, and the segmented audit log.
// Implementations must be safe for concurrent use.
type Backend interface {
	// SaveSnapshot persists one bus's enrollment snapshot (a JSON payload)
	// atomically under the given spec hash, replacing any previous one.
	SaveSnapshot(bus, specHash string, payload []byte) error
	// LoadSnapshot returns the bus's snapshot payload after validating it.
	// Failures are typed: ErrNoSnapshot, ErrCorruptSnapshot (checksum or
	// envelope damage), ErrStaleSnapshot (spec hash mismatch) — all of which
	// the caller answers with cold calibration.
	LoadSnapshot(bus, specHash string) ([]byte, error)
	// AppendHistory appends one history record to the WAL.
	AppendHistory(rec []byte) error
	// ReplayHistory streams every retained history record, oldest first.
	// Corrupt stretches are skipped (their byte count is returned), never
	// fatal.
	ReplayHistory(fn func(rec []byte) error) (skipped int64, err error)
	// AppendAudit appends one rendered audit line to the audit log.
	AppendAudit(line []byte) error
	// Sync flushes everything buffered to stable storage.
	Sync() error
	// Close syncs and releases the backend.
	Close() error
}

// Memory is the in-memory Backend for tests: same semantics, no disk. The
// Corrupt* helpers let tests exercise the validation paths.
type Memory struct {
	mu        sync.Mutex
	snaps     map[string]memSnap
	history   [][]byte
	audit     [][]byte
	histTorn  int64 // bytes "skipped" reported by ReplayHistory
	histCut   int   // records hidden from replay (simulated torn tail)
	snapCount int
}

type memSnap struct {
	specHash string
	payload  []byte
	corrupt  bool
}

// NewMemory builds an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{snaps: make(map[string]memSnap)}
}

// SaveSnapshot implements Backend.
func (m *Memory) SaveSnapshot(bus, specHash string, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(payload))
	copy(cp, payload)
	m.snaps[bus] = memSnap{specHash: specHash, payload: cp}
	m.snapCount++
	return nil
}

// LoadSnapshot implements Backend.
func (m *Memory) LoadSnapshot(bus, specHash string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[bus]
	if !ok {
		return nil, fmt.Errorf("%w: bus %q", ErrNoSnapshot, bus)
	}
	if s.corrupt {
		return nil, fmt.Errorf("%w: bus %q", ErrCorruptSnapshot, bus)
	}
	if s.specHash != specHash {
		return nil, fmt.Errorf("%w: bus %q", ErrStaleSnapshot, bus)
	}
	cp := make([]byte, len(s.payload))
	copy(cp, s.payload)
	return cp, nil
}

// AppendHistory implements Backend.
func (m *Memory) AppendHistory(rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(rec))
	copy(cp, rec)
	m.history = append(m.history, cp)
	return nil
}

// ReplayHistory implements Backend.
func (m *Memory) ReplayHistory(fn func(rec []byte) error) (int64, error) {
	m.mu.Lock()
	recs := m.history
	if m.histCut > 0 && m.histCut <= len(recs) {
		recs = recs[:len(recs)-m.histCut]
	}
	torn := m.histTorn
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return torn, err
		}
	}
	return torn, nil
}

// AppendAudit implements Backend.
func (m *Memory) AppendAudit(line []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(line))
	copy(cp, line)
	m.audit = append(m.audit, cp)
	return nil
}

// Sync implements Backend (a no-op in memory).
func (m *Memory) Sync() error { return nil }

// Close implements Backend (a no-op in memory).
func (m *Memory) Close() error { return nil }

// CorruptSnapshot marks a bus's stored snapshot as damaged, so the next
// LoadSnapshot reports ErrCorruptSnapshot — the test seam for the
// never-trust-a-bad-snapshot path.
func (m *Memory) CorruptSnapshot(bus string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.snaps[bus]; ok {
		s.corrupt = true
		m.snaps[bus] = s
	}
}

// TearHistoryTail hides the newest n history records from replay and reports
// torn bytes, simulating a crash that caught the WAL mid-record.
func (m *Memory) TearHistoryTail(n int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.histCut = n
	m.histTorn = bytes
}

// Snapshots reports how many snapshot writes the backend has taken.
func (m *Memory) Snapshots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapCount
}

// AuditLines returns the retained audit lines (test inspection).
func (m *Memory) AuditLines() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, len(m.audit))
	copy(out, m.audit)
	return out
}

// DirOptions tunes the embedded file backend. The zero value picks the
// defaults (4 MiB / 8 segments for history, 4 MiB / 16 for audit).
type DirOptions struct {
	// History tunes the score/IIP history WAL.
	History WALOptions
	// Audit tunes the segmented audit log.
	Audit WALOptions
}

// Dir is the embedded file Backend: a state directory holding per-bus
// snapshot files plus segmented history and audit WALs.
//
//	<root>/snapshots/<bus>.snap
//	<root>/history/seg-*.wal
//	<root>/audit/seg-*.wal
type Dir struct {
	root    string
	history *WAL
	audit   *WAL
}

// OpenDir opens (creating if needed) the state directory at root, recovering
// any torn WAL tails left by a crash.
func OpenDir(root string, opts DirOptions) (*Dir, error) {
	if err := os.MkdirAll(filepath.Join(root, "snapshots"), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating state dir: %w", err)
	}
	if opts.Audit.MaxSegments == 0 {
		opts.Audit.MaxSegments = 16
	}
	hist, err := OpenWAL(filepath.Join(root, "history"), opts.History)
	if err != nil {
		return nil, err
	}
	audit, err := OpenWAL(filepath.Join(root, "audit"), opts.Audit)
	if err != nil {
		hist.Close() //nolint:errcheck // surfacing the open error
		return nil, err
	}
	return &Dir{root: root, history: hist, audit: audit}, nil
}

// snapPath renders a bus's snapshot file path; ids are path-escaped so bus
// names cannot traverse out of the snapshots directory.
func (d *Dir) snapPath(bus string) string {
	return filepath.Join(d.root, "snapshots", url.PathEscape(bus)+".snap")
}

// SaveSnapshot implements Backend.
func (d *Dir) SaveSnapshot(bus, specHash string, payload []byte) error {
	raw, err := EncodeSnapshot(specHash, payload)
	if err != nil {
		return err
	}
	return writeFileAtomic(d.snapPath(bus), raw)
}

// LoadSnapshot implements Backend.
func (d *Dir) LoadSnapshot(bus, specHash string) ([]byte, error) {
	raw, err := os.ReadFile(d.snapPath(bus))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: bus %q", ErrNoSnapshot, bus)
		}
		return nil, fmt.Errorf("%w: bus %q: %v", ErrCorruptSnapshot, bus, err)
	}
	payload, err := DecodeSnapshot(raw, specHash)
	if err != nil {
		return nil, fmt.Errorf("bus %q: %w", bus, err)
	}
	return payload, nil
}

// AppendHistory implements Backend.
func (d *Dir) AppendHistory(rec []byte) error { return d.history.Append(rec) }

// ReplayHistory implements Backend.
func (d *Dir) ReplayHistory(fn func(rec []byte) error) (int64, error) {
	return d.history.Replay(fn)
}

// AppendAudit implements Backend.
func (d *Dir) AppendAudit(line []byte) error { return d.audit.Append(line) }

// HistoryWAL exposes the history log (smoke-test and stats access).
func (d *Dir) HistoryWAL() *WAL { return d.history }

// AuditWAL exposes the audit log (smoke-test and stats access).
func (d *Dir) AuditWAL() *WAL { return d.audit }

// Sync implements Backend.
func (d *Dir) Sync() error {
	if err := d.history.Sync(); err != nil {
		return err
	}
	return d.audit.Sync()
}

// Close implements Backend.
func (d *Dir) Close() error {
	err := d.history.Close()
	if aerr := d.audit.Close(); err == nil {
		err = aerr
	}
	return err
}
