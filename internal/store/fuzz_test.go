package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot decoder: it must
// reject or accept, never panic, and anything it accepts must round-trip from
// a genuine encode.
func FuzzDecodeSnapshot(f *testing.F) {
	good, _ := EncodeSnapshot("spec-hash", []byte(`{"rounds":9,"score":0.99}`))
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"spec_hash":"x","sha256":"00","payload":{}}`))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x12})
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := DecodeSnapshot(raw, "spec-hash")
		if err != nil {
			return
		}
		// Accepted: re-encoding the payload must decode to the same bytes.
		re, err := EncodeSnapshot("spec-hash", payload)
		if err != nil {
			t.Fatalf("accepted payload does not re-encode: %v", err)
		}
		back, err := DecodeSnapshot(re, "spec-hash")
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("round trip changed payload: %q vs %q", back, payload)
		}
	})
}

// FuzzScanRecord hammers the WAL record scanner with corrupt, truncated, and
// bit-flipped frames: it must classify every input as a record, EOF, or torn
// — without panicking or over-reading.
func FuzzScanRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x00, 0x00, 0x00})
	f.Add([]byte{0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 'a', 'b', 'c'})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := scanRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error path consumed %d bytes", n)
			}
			return
		}
		if n < recordHeader || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(payload) != n-recordHeader {
			t.Fatalf("payload %d bytes for frame of %d", len(payload), n)
		}
	})
}

// FuzzWALReplay writes a fuzzer-mangled segment file and proves recovery is
// total: open truncates any torn tail, replay never fails, and the log stays
// appendable afterwards.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{}, []byte("tail"))
	f.Add([]byte{0x02, 0x00, 0x00, 0x00, 0x6e, 0x8c, 0x6f, 0x9f, 'h', 'i'}, []byte{0x09})
	f.Add(bytes.Repeat([]byte{0x00}, 32), []byte{})
	f.Fuzz(func(t *testing.T, segment, tail []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), append(segment, tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatalf("OpenWAL over mangled segment: %v", err)
		}
		defer w.Close()
		if _, err := w.Replay(func([]byte) error { return nil }); err != nil {
			t.Fatalf("Replay over mangled segment: %v", err)
		}
		if err := w.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		var last []byte
		if _, err := w.Replay(func(p []byte) error { last = append(last[:0], p...); return nil }); err != nil {
			t.Fatal(err)
		}
		if string(last) != "post-recovery" {
			t.Fatalf("appended record lost; last = %q", last)
		}
	})
}
