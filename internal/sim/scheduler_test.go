package sim

import (
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1e-9) != Nanosecond {
		t.Errorf("FromSeconds(1ns) = %v", FromSeconds(1e-9))
	}
	if Nanosecond.Seconds() != 1e-9 {
		t.Errorf("Seconds = %v", Nanosecond.Seconds())
	}
	for _, c := range []struct {
		t    Time
		want string
	}{
		{500, "500 ps"},
		{2 * Nanosecond, "2.000 ns"},
		{3 * Microsecond, "3.000 µs"},
		{5 * Millisecond, "5.000 ms"},
	} {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	var s Scheduler
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	if n := s.Run(100); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(10, func() { order = append(order, i) })
	}
	s.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var s Scheduler
	var fired []Time
	s.After(5, func() {
		fired = append(fired, s.Now())
		s.After(7, func() { fired = append(fired, s.Now()) })
	})
	s.Run(100)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 12 {
		t.Errorf("fired = %v", fired)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var s Scheduler
	s.At(10, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var s Scheduler
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i*10), func() { count++ })
	}
	n := s.RunUntil(45)
	if n != 4 || count != 4 {
		t.Errorf("ran %d events, count %d", n, count)
	}
	if s.Now() != 45 {
		t.Errorf("time after RunUntil = %v, want deadline", s.Now())
	}
	if s.Pending() != 6 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestRunawayGuard(t *testing.T) {
	var s Scheduler
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected runaway panic")
		}
	}()
	s.Run(1000)
}

func TestClock(t *testing.T) {
	var s Scheduler
	c := NewClock(&s, 156.25e6)
	if c.Period != 6400 {
		t.Errorf("period = %v ps, want 6400", int64(c.Period))
	}
	if c.CyclesToTime(10) != 64000 {
		t.Errorf("CyclesToTime = %v", c.CyclesToTime(10))
	}
	if c.TimeToCycles(6401) != 2 {
		t.Errorf("TimeToCycles should round up: %v", c.TimeToCycles(6401))
	}
	ticks := 0
	c.EveryCycle(func(cycle int64) bool {
		ticks++
		return cycle < 5
	})
	s.Run(100)
	if ticks != 5 {
		t.Errorf("ticks = %d", ticks)
	}
	if s.Now() != 5*c.Period {
		t.Errorf("time = %v", s.Now())
	}
}

func TestNewClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewClock(&Scheduler{}, 0)
}
