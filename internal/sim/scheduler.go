// Package sim provides the discrete-event substrate for the memory-bus
// protection simulation: a picosecond-resolution event scheduler and clock
// domains, enough to model DRAM timing and iTDR measurement windows on a
// common timeline.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulation time in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) * 1e-12 }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3f ms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3f µs", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3f ns", float64(t)/float64(Nanosecond))
	}
	return fmt.Sprintf("%d ps", int64(t))
}

// FromSeconds converts floating-point seconds to simulation time.
func FromSeconds(s float64) Time { return Time(s * 1e12) }

// Event is a scheduled callback.
type event struct {
	at    Time
	seq   uint64 // FIFO tie-break for same-time events
	run   func()
	index int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler runs events in time order. The zero value is ready to use.
type Scheduler struct {
	now   Time
	seq   uint64
	queue eventQueue
}

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics —
// it would silently corrupt causality.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, run: fn})
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Step runs the next event, advancing time to it. It reports whether an
// event was run.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	e.run()
	return true
}

// RunUntil executes events until the queue is empty or the next event lies
// beyond the deadline; time ends at min(deadline, last event). It returns
// the number of events executed.
func (s *Scheduler) RunUntil(deadline Time) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// Run executes every queued event (including ones scheduled while running)
// and returns the number executed. A safety cap guards against runaway
// self-scheduling loops.
func (s *Scheduler) Run(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if n >= maxEvents {
			panic(fmt.Sprintf("sim: exceeded %d events; runaway schedule?", maxEvents))
		}
	}
	return n
}

// Clock derives periodic ticks from a scheduler.
type Clock struct {
	// Period is the clock period.
	Period Time
	sched  *Scheduler
}

// NewClock returns a clock with the given frequency in Hz.
func NewClock(s *Scheduler, freqHz float64) *Clock {
	if freqHz <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock frequency %v", freqHz))
	}
	return &Clock{Period: FromSeconds(1 / freqHz), sched: s}
}

// CyclesToTime converts a cycle count to a duration.
func (c *Clock) CyclesToTime(cycles int64) Time { return Time(cycles) * c.Period }

// TimeToCycles converts a duration to whole cycles, rounding up — an
// operation that takes any fraction of a cycle occupies the whole cycle.
func (c *Clock) TimeToCycles(d Time) int64 {
	return int64((d + c.Period - 1) / c.Period)
}

// EveryCycle schedules fn on each clock edge starting one period from now,
// until fn returns false.
func (c *Clock) EveryCycle(fn func(cycle int64) bool) {
	var tick func()
	cycle := int64(0)
	tick = func() {
		cycle++
		if fn(cycle) {
			c.sched.After(c.Period, tick)
		}
	}
	c.sched.After(c.Period, tick)
}
