package bus

import (
	"math"
	"testing"
	"testing/quick"

	"divot/internal/rng"
)

func TestEncodeDecodeAllBytes(t *testing.T) {
	// Every byte value round-trips, in a stream (so disparity state is
	// exercised across values).
	var enc Encoder8b10b
	var dec Decoder8b10b
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i % 256)
	}
	syms := enc.Encode(data)
	back, err := dec.Decode(syms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("byte %d: %02x decoded as %02x (symbol %010b)", i, data[i], back[i], syms[i])
		}
	}
}

func TestEncodeDecodeRandomStreams(t *testing.T) {
	f := func(data []byte) bool {
		var enc Encoder8b10b
		var dec Decoder8b10b
		back, err := dec.Decode(enc.Encode(data))
		if err != nil {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolDisparityBounded(t *testing.T) {
	// DC balance: the running digital sum of the encoded bit stream stays
	// within a small constant bound, for any payload — including the
	// pathological all-zeros and all-ones.
	for name, gen := range map[string]func(i int) byte{
		"zeros":  func(int) byte { return 0x00 },
		"ones":   func(int) byte { return 0xFF },
		"ramp":   func(i int) byte { return byte(i) },
		"random": func(i int) byte { return byte((i*2654435761 + 12345) >> 7) },
	} {
		var enc Encoder8b10b
		data := make([]byte, 1000)
		for i := range data {
			data[i] = gen(i)
		}
		bits := SymbolsToBits(enc.Encode(data))
		sum := 0
		for i, b := range bits {
			if b == 1 {
				sum++
			} else {
				sum--
			}
			if sum > 4 || sum < -4 {
				t.Fatalf("%s: running digital sum %d at bit %d", name, sum, i)
			}
		}
		if sum < -2 || sum > 2 {
			t.Errorf("%s: final digital sum %d", name, sum)
		}
	}
}

func TestRunLengthBounded(t *testing.T) {
	var enc Encoder8b10b
	stream := rng.New(5)
	data := make([]byte, 4000)
	stream.Bytes(data)
	bits := SymbolsToBits(enc.Encode(data))
	run, last := 1, bits[0]
	for _, b := range bits[1:] {
		if b == last {
			run++
			// True 8b/10b bounds runs at 5; this implementation omits the
			// balanced-sub-block alternation refinement, so allow 6.
			if run > 6 {
				t.Fatalf("run of %d identical bits", run)
			}
		} else {
			run, last = 1, b
		}
	}
}

func TestTriggerDensityOn8b10b(t *testing.T) {
	// The §II-E premise: channel coding makes symbols occur evenly, so 1→0
	// launches are plentiful on any payload — even all-zeros.
	for _, payload := range [][]byte{
		make([]byte, 2000),
		func() []byte { b := make([]byte, 2000); rng.New(6).Bytes(b); return b }(),
	} {
		var enc Encoder8b10b
		bits := SymbolsToBits(enc.Encode(payload))
		density := float64(TriggerOpportunities(bits)) / float64(len(bits))
		if density < 0.15 {
			t.Errorf("trigger density %v too sparse on 8b/10b stream", density)
		}
		ones := OnesDensity(bits)
		if math.Abs(ones-0.5) > 0.02 {
			t.Errorf("ones density %v, want ~0.5", ones)
		}
	}
}

func TestDecoderRejectsInvalidSymbols(t *testing.T) {
	var dec Decoder8b10b
	// 6b sub-block 000000 is not in the data alphabet.
	if _, err := dec.DecodeSymbol(0b0000001011); err == nil {
		t.Error("expected invalid 6b sub-block error")
	}
	// 4b sub-block 0000 is invalid.
	if _, err := dec.DecodeSymbol(0b1001110000); err == nil {
		t.Error("expected invalid 4b sub-block error")
	}
}

func TestDecoderDetectsDisparityViolation(t *testing.T) {
	var enc Encoder8b10b
	// D.3.0 at RD- flips the running disparity (balanced 6b, +2 4b), so a
	// verbatim repetition of the same 10-bit symbol is illegal.
	syms := enc.Encode([]byte{0x03})
	var dec Decoder8b10b
	if _, err := dec.Decode([]uint16{syms[0], syms[0]}); err == nil {
		t.Error("expected disparity violation")
	}
}

func TestDecoderDetectsSingleBitCorruption(t *testing.T) {
	// Most single-bit flips land outside the alphabet or break disparity —
	// the code's error-detection property. Count detection over a sweep.
	var enc Encoder8b10b
	data := make([]byte, 64)
	rng.New(7).Bytes(data)
	syms := enc.Encode(data)
	detected, total := 0, 0
	for i := range syms {
		for bit := 0; bit < 10; bit++ {
			corrupted := append([]uint16(nil), syms...)
			corrupted[i] ^= 1 << bit
			var dec Decoder8b10b
			back, err := dec.Decode(corrupted)
			total++
			if err != nil {
				detected++
				continue
			}
			for j := range data {
				if back[j] != data[j] {
					// Miscoding without detection: possible in 8b/10b
					// (it is not an ECC), but the flip was at least
					// data-visible.
					break
				}
			}
		}
	}
	if frac := float64(detected) / float64(total); frac < 0.5 {
		t.Errorf("only %.0f%% of single-bit corruptions detected; expected most", frac*100)
	}
}

func TestSymbolBits(t *testing.T) {
	bits := SymbolBits(0b1000000001)
	if bits[0] != 1 || bits[9] != 1 {
		t.Errorf("bits = %v", bits)
	}
	for _, b := range bits[1:9] {
		if b != 0 {
			t.Fatalf("bits = %v", bits)
		}
	}
}
