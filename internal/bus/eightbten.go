package bus

import "fmt"

// 8b/10b line coding (Widmer–Franaszek), the channel code used by the
// high-speed serial standards the paper's §II-E references: it bounds run
// length at 5, balances DC exactly via running disparity, and guarantees the
// iTDR's FIFO trigger a dense supply of 1→0 launch edges on any payload.
//
// The implementation is the standard 5b/6b + 3b/4b decomposition with
// running-disparity selection, built from the published sub-block tables.

// Encoder8b10b encodes bytes into 10-bit symbols, tracking running
// disparity. The zero value starts at negative disparity, the conventional
// link-reset state.
type Encoder8b10b struct {
	rdPositive bool
}

// Decoder8b10b decodes 10-bit symbols back into bytes, validating disparity.
type Decoder8b10b struct {
	rdPositive bool
}

// fiveSix maps EDCBA (5 LSBs) to the abcdei sub-block for RD- (negative
// running disparity). Entries are written bit 'a' first (transmission
// order); disparity-neutral entries are used for both polarities, others are
// complemented for RD+.
var fiveSix = [32]uint16{
	0b100111, 0b011101, 0b101101, 0b110001, 0b110101, 0b101001, 0b011001, 0b111000,
	0b111001, 0b100101, 0b010101, 0b110100, 0b001101, 0b101100, 0b011100, 0b010111,
	0b011011, 0b100011, 0b010011, 0b110010, 0b001011, 0b101010, 0b011010, 0b111010,
	0b110011, 0b100110, 0b010110, 0b110110, 0b001110, 0b101110, 0b011110, 0b101011,
}

// threeFour maps HGF (3 MSBs) to the fghj sub-block for RD-. Index 7 has the
// primary (D.x.7) encoding; the alternate (D.x.A7) is handled specially.
var threeFour = [8]uint8{
	0b1011, 0b1001, 0b0101, 0b1100, 0b1101, 0b1010, 0b0110, 0b1110,
}

// popcount4/6 return the number of set bits in the sub-block.
func popcount(v uint16) int {
	n := 0
	for ; v != 0; v >>= 1 {
		n += int(v & 1)
	}
	return n
}

// useAlternate7 reports whether D.x.A7 must replace D.x.7 to avoid five
// consecutive identical bits across the sub-block boundary: required for
// x ∈ {17,18,20} at RD- and x ∈ {11,13,14} at RD+.
func useAlternate7(x int, rdPositive bool) bool {
	if rdPositive {
		return x == 11 || x == 13 || x == 14
	}
	return x == 17 || x == 18 || x == 20
}

// EncodeByte returns the 10-bit symbol (bit 'a' in the MSB of the 10-bit
// value, matching transmission order) for the data byte b.
func (e *Encoder8b10b) EncodeByte(b byte) uint16 {
	x := int(b & 0x1F)
	y := int(b >> 5)

	six := fiveSix[x]
	sixOnes := popcount(six)
	// Unbalanced sub-blocks are complemented at RD+; D.7's balanced block
	// also alternates (111000 at RD-, 000111 at RD+) to bound run length.
	if (sixOnes != 3 || x == 7) && e.rdPositive {
		six = ^six & 0x3F
	}
	rd := e.rdPositive
	if sixOnes != 3 {
		rd = !rd
	}

	four := uint16(threeFour[y])
	if y == 7 && useAlternate7(x, rd) {
		four = 0b0111 // D.x.A7 at RD-
	}
	fourOnes := popcount(four)
	// y=3's balanced block alternates like D.7 (1100 at RD-, 0011 at RD+).
	if (fourOnes != 2 || y == 3) && rd {
		four = ^four & 0xF
	}
	if fourOnes != 2 {
		rd = !rd
	}
	e.rdPositive = rd
	return six<<4 | four
}

// Encode encodes a byte slice into symbols.
func (e *Encoder8b10b) Encode(data []byte) []uint16 {
	out := make([]uint16, len(data))
	for i, b := range data {
		out[i] = e.EncodeByte(b)
	}
	return out
}

// decode56 inverts fiveSix (both polarities, including D.7's alternation).
var decode56 = func() map[uint16]byte {
	m := make(map[uint16]byte, 64)
	for x, six := range fiveSix {
		m[six] = byte(x)
		if popcount(six) != 3 || x == 7 {
			m[^six&0x3F] = byte(x)
		}
	}
	return m
}()

// decode34 inverts threeFour (both polarities, the y=3 alternation, and the
// A7 alternates).
var decode34 = func() map[uint16]byte {
	m := make(map[uint16]byte, 16)
	for y, four := range threeFour {
		m[uint16(four)] = byte(y)
		if popcount(uint16(four)) != 2 || y == 3 {
			m[uint16(^four)&0xF] = byte(y)
		}
	}
	m[0b0111] = 7 // D.x.A7 RD-
	m[0b1000] = 7 // D.x.A7 RD+
	return m
}()

// DecodeSymbol decodes one 10-bit symbol. It returns an error for symbols
// outside the data alphabet or whose sub-blocks violate the running
// disparity (checked per sub-block, as real deserializers do).
func (d *Decoder8b10b) DecodeSymbol(sym uint16) (byte, error) {
	six := sym >> 4
	four := sym & 0xF
	x, ok := decode56[six]
	if !ok {
		return 0, fmt.Errorf("bus: invalid 6b sub-block %06b", six)
	}
	y, ok := decode34[four]
	if !ok {
		return 0, fmt.Errorf("bus: invalid 4b sub-block %04b", four)
	}
	step := func(ones, balance int, block uint16, width int) error {
		switch {
		case ones > balance:
			if d.rdPositive {
				return fmt.Errorf("bus: disparity violation on %0*b (RD+)", width, block)
			}
			d.rdPositive = true
		case ones < balance:
			if !d.rdPositive {
				return fmt.Errorf("bus: disparity violation on %0*b (RD-)", width, block)
			}
			d.rdPositive = false
		}
		return nil
	}
	if err := step(popcount(six), 3, six, 6); err != nil {
		return 0, err
	}
	if err := step(popcount(four), 2, four, 4); err != nil {
		return 0, err
	}
	return y<<5 | x, nil
}

// Decode decodes a symbol stream.
func (d *Decoder8b10b) Decode(syms []uint16) ([]byte, error) {
	out := make([]byte, len(syms))
	for i, s := range syms {
		b, err := d.DecodeSymbol(s)
		if err != nil {
			return nil, fmt.Errorf("bus: symbol %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// K28.5 is the comma control symbol used for frame alignment: its 6b
// sub-block contains the singular comma bit pattern a deserializer can lock
// onto. Like any unbalanced symbol it has two forms selected by running
// disparity.
const (
	k285Neg uint16 = 0b0011111010 // RD- form
	k285Pos uint16 = 0b1100000101 // RD+ form
)

// EncodeComma emits a K28.5 comma for the current running disparity. The
// comma's 6b block is unbalanced, so it flips the disparity like any data
// symbol would.
func (e *Encoder8b10b) EncodeComma() uint16 {
	sym := k285Neg
	if e.rdPositive {
		sym = k285Pos
	}
	e.rdPositive = !e.rdPositive
	return sym
}

// IsComma reports whether the symbol is either form of K28.5.
func IsComma(sym uint16) bool {
	return sym == k285Neg || sym == k285Pos
}

// ConsumeComma validates a K28.5 against the running disparity and advances
// it. It returns an error for a disparity-violating comma.
func (d *Decoder8b10b) ConsumeComma(sym uint16) error {
	switch sym {
	case k285Neg:
		if d.rdPositive {
			return fmt.Errorf("bus: K28.5 RD- form at RD+")
		}
		d.rdPositive = true
	case k285Pos:
		if !d.rdPositive {
			return fmt.Errorf("bus: K28.5 RD+ form at RD-")
		}
		d.rdPositive = false
	default:
		return fmt.Errorf("bus: %010b is not K28.5", sym)
	}
	return nil
}

// SymbolBits expands a symbol into its 10 transmitted bits, 'a' first.
func SymbolBits(sym uint16) []uint8 {
	bits := make([]uint8, 10)
	for i := 0; i < 10; i++ {
		bits[i] = uint8(sym>>(9-i)) & 1
	}
	return bits
}

// SymbolsToBits flattens a symbol stream into a bit stream.
func SymbolsToBits(syms []uint16) []uint8 {
	bits := make([]uint8, 0, len(syms)*10)
	for _, s := range syms {
		bits = append(bits, SymbolBits(s)...)
	}
	return bits
}
