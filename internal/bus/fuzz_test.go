package bus

import (
	"bytes"
	"testing"
)

// FuzzDecoder8b10b feeds arbitrary symbol streams to the decoder: it must
// either decode or reject, never panic, and valid encodings must round-trip.
func FuzzDecoder8b10b(f *testing.F) {
	f.Add([]byte{0x00, 0xFF, 0x55, 0xAA})
	f.Add([]byte("hello world"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Path 1: decode raw (possibly invalid) symbols built from data.
		var dec Decoder8b10b
		syms := make([]uint16, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			syms = append(syms, uint16(data[i])<<8|uint16(data[i+1])&0x3FF)
		}
		_, _ = dec.Decode(syms) // must not panic

		// Path 2: encode-decode round trip must be exact.
		var enc Encoder8b10b
		var dec2 Decoder8b10b
		back, err := dec2.Decode(enc.Encode(data))
		if err != nil {
			t.Fatalf("valid encoding rejected: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch")
		}
	})
}

// FuzzScrambler checks the scrambler round trip on arbitrary payloads.
func FuzzScrambler(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x00, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, rx := NewScrambler(), NewScrambler()
		bits := BytesToBits(data)
		scrambled := tx.ScrambleBits(append([]uint8(nil), bits...))
		back := rx.ScrambleBits(scrambled)
		for i := range bits {
			if bits[i] != back[i] {
				t.Fatal("scrambler round trip mismatch")
			}
		}
	})
}

// FuzzPam4 checks symbol packing against arbitrary payloads.
func FuzzPam4(f *testing.F) {
	f.Add([]byte{0x1B, 0xE4})
	f.Fuzz(func(t *testing.T, data []byte) {
		syms := BytesToPam4(data)
		back := Pam4ToBytes(syms)
		if !bytes.Equal(back, data) {
			t.Fatal("PAM4 round trip mismatch")
		}
		for _, s := range syms {
			if Pam4FromLevel(s.Level()) != s {
				t.Fatal("level mapping not invertible")
			}
		}
	})
}
