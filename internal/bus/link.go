package bus

import (
	"fmt"

	"divot/internal/rng"
	"divot/internal/txline"
)

// Encoding selects the channel code whitening the lane (§II-E: "most
// high-speed interfaces apply channel encoding to ensure that different
// symbols occur evenly").
type Encoding int

const (
	// EncodingScrambler whitens with the x⁷+x⁶+1 additive scrambler.
	EncodingScrambler Encoding = iota
	// Encoding8b10b uses 8b/10b symbols: exact DC balance, bounded run
	// length, guaranteed edge density — at a 25 % bandwidth cost.
	Encoding8b10b
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncodingScrambler:
		return "scrambler"
	case Encoding8b10b:
		return "8b10b"
	}
	return fmt.Sprintf("Encoding(%d)", int(e))
}

// Link is one protected serial lane: the physical transmission line plus the
// transmitter pipeline (traffic → channel code → FIFO) whose head feeds both
// the line and the iTDR trigger.
type Link struct {
	// Line is the physical trace the lane drives.
	Line *txline.Line
	// Fifo is the transmit FIFO; the iTDR trigger peeks at its head.
	Fifo *FIFO[uint8]

	encoding  Encoding
	scrambler *Scrambler
	encoder   *Encoder8b10b
	traffic   *TrafficGenerator
	sent      int64
	triggers  int64
}

// NewLink builds a scrambler-coded lane over the given line carrying the
// given traffic.
func NewLink(line *txline.Line, pattern TrafficPattern, stream *rng.Stream) *Link {
	return NewLinkEncoded(line, pattern, EncodingScrambler, stream)
}

// NewLinkEncoded builds a lane with an explicit channel code.
func NewLinkEncoded(line *txline.Line, pattern TrafficPattern, enc Encoding, stream *rng.Stream) *Link {
	return &Link{
		Line:      line,
		Fifo:      NewFIFO[uint8](64),
		encoding:  enc,
		scrambler: NewScrambler(),
		encoder:   &Encoder8b10b{},
		traffic:   NewTrafficGenerator(pattern, stream.Child("traffic")),
	}
}

// Encoding returns the lane's channel code.
func (l *Link) Encoding() Encoding { return l.encoding }

// refill tops up the FIFO with freshly encoded traffic, only encoding a
// symbol when it fits whole — clipping a symbol would corrupt the stream.
func (l *Link) refill() {
	for {
		need := 8
		if l.encoding == Encoding8b10b {
			need = 10
		}
		if l.Fifo.Cap()-l.Fifo.Len() < need {
			return
		}
		var payload [1]byte
		l.traffic.Next(payload[:])
		var bits []uint8
		switch l.encoding {
		case Encoding8b10b:
			bits = SymbolBits(l.encoder.EncodeByte(payload[0]))
		default:
			bits = l.scrambler.ScrambleBits(BytesToBits(payload[:]))
		}
		for _, b := range bits {
			l.Fifo.Push(b)
		}
	}
}

// Step advances the lane by one bit time: it launches the next bit onto the
// line and reports whether this cycle offered the iTDR a usable 1→0 launch
// edge (the head bit is 1 and the following bit is 0 — §II-E's trigger
// condition).
func (l *Link) Step() (launched uint8, trigger bool) {
	if l.Fifo.Len() < 2 {
		l.refill()
	}
	head, ok := l.Fifo.Pop()
	if !ok {
		panic("bus: link FIFO underrun after refill")
	}
	next, ok := l.Fifo.Peek(0)
	l.sent++
	trigger = ok && head == 1 && next == 0
	if trigger {
		l.triggers++
	}
	return head, trigger
}

// BitsSent returns the number of bits launched.
func (l *Link) BitsSent() int64 { return l.sent }

// TriggerRate returns the observed fraction of cycles offering a trigger.
func (l *Link) TriggerRate() float64 {
	if l.sent == 0 {
		return 0
	}
	return float64(l.triggers) / float64(l.sent)
}

// MeasureTriggerDensity runs the lane for n bits and returns the observed
// trigger rate — used to parameterize the iTDR's measurement-time model.
func (l *Link) MeasureTriggerDensity(n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("bus: non-positive sample size %d", n))
	}
	for i := 0; i < n; i++ {
		l.Step()
	}
	return l.TriggerRate()
}
