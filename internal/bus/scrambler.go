package bus

// Scrambler is an additive (synchronous) LFSR scrambler using the x⁷+x⁶+1
// polynomial, the classic serial-link whitener. High-speed interfaces apply
// such channel coding so symbols occur evenly (§II-E) — which is exactly
// what makes the untriggered iTDR's rising and falling reflections cancel,
// and what guarantees the FIFO trigger a steady supply of 1→0 launches.
type Scrambler struct {
	state uint8 // 7-bit LFSR state
}

// NewScrambler returns a scrambler seeded to the conventional all-ones
// state. Transmitter and receiver construct identical scramblers and stay
// in sync by construction (additive scrambling).
func NewScrambler() *Scrambler { return &Scrambler{state: 0x7F} }

// NextBit returns the next keystream bit.
func (s *Scrambler) NextBit() uint8 {
	// Feedback taps at positions 7 and 6 (1-indexed).
	b7 := (s.state >> 6) & 1
	b6 := (s.state >> 5) & 1
	out := b7
	s.state = ((s.state << 1) | (b7 ^ b6)) & 0x7F
	return out
}

// ScrambleBit whitens one data bit.
func (s *Scrambler) ScrambleBit(b uint8) uint8 { return (b & 1) ^ s.NextBit() }

// ScrambleBits whitens a bit slice in place and returns it.
func (s *Scrambler) ScrambleBits(bits []uint8) []uint8 {
	for i, b := range bits {
		bits[i] = s.ScrambleBit(b)
	}
	return bits
}

// BytesToBits expands bytes into bits, MSB first.
func BytesToBits(data []byte) []uint8 {
	bits := make([]uint8, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>i)&1)
		}
	}
	return bits
}

// BitsToBytes packs bits (MSB first) into bytes; the bit count must be a
// multiple of 8.
func BitsToBytes(bits []uint8) []byte {
	if len(bits)%8 != 0 {
		panic("bus: bit count not a multiple of 8")
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		out[i/8] |= (b & 1) << (7 - i%8)
	}
	return out
}

// TriggerOpportunities counts the 1→0 transitions in the bit stream — the
// launches the FIFO trigger can use (§II-E).
func TriggerOpportunities(bits []uint8) int {
	n := 0
	for i := 0; i+1 < len(bits); i++ {
		if bits[i] == 1 && bits[i+1] == 0 {
			n++
		}
	}
	return n
}

// OnesDensity returns the fraction of ones in the bit stream.
func OnesDensity(bits []uint8) float64 {
	if len(bits) == 0 {
		return 0
	}
	ones := 0
	for _, b := range bits {
		if b == 1 {
			ones++
		}
	}
	return float64(ones) / float64(len(bits))
}
