package bus

import "testing"

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO[int](3)
	if !f.Empty() || f.Full() || f.Cap() != 3 {
		t.Fatalf("fresh FIFO state wrong: len=%d cap=%d", f.Len(), f.Cap())
	}
	for i := 1; i <= 3; i++ {
		if !f.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if f.Push(4) {
		t.Error("push into full FIFO should fail")
	}
	if !f.Full() || f.Len() != 3 {
		t.Errorf("len = %d", f.Len())
	}
	for i := 1; i <= 3; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d, %v; want %d", v, ok, i)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Error("pop from empty FIFO should fail")
	}
}

func TestFIFOWraparound(t *testing.T) {
	f := NewFIFO[int](4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !f.Push(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := f.Pop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d pop = %d", round, v)
			}
		}
	}
}

func TestFIFOPeek(t *testing.T) {
	f := NewFIFO[string](4)
	f.Push("a")
	f.Push("b")
	if v, ok := f.Peek(0); !ok || v != "a" {
		t.Errorf("Peek(0) = %q, %v", v, ok)
	}
	if v, ok := f.Peek(1); !ok || v != "b" {
		t.Errorf("Peek(1) = %q, %v", v, ok)
	}
	if _, ok := f.Peek(2); ok {
		t.Error("Peek past end should fail")
	}
	if _, ok := f.Peek(-1); ok {
		t.Error("negative Peek should fail")
	}
	// Peek must not consume.
	if f.Len() != 2 {
		t.Errorf("Peek consumed elements: len %d", f.Len())
	}
}

func TestFIFOPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFIFO[int](0)
}
