// Package bus provides the digital-bus substrate around the protected
// transmission line: the data FIFO whose head the iTDR trigger watches, the
// channel scrambler that evens out symbol statistics (§II-E), NRZ bit
// handling, and traffic generation for the experiments.
package bus

import "fmt"

// FIFO is a fixed-capacity ring buffer. The iTDR's trigger logic inspects
// the element about to be launched, so the FIFO exposes Peek in addition to
// the usual queue operations. The zero value is not usable; use NewFIFO.
type FIFO[T any] struct {
	buf        []T
	head, size int
}

// NewFIFO returns a FIFO with the given capacity.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("bus: non-positive FIFO capacity %d", capacity))
	}
	return &FIFO[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued elements.
func (f *FIFO[T]) Len() int { return f.size }

// Cap returns the capacity.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Empty reports whether the FIFO holds no elements.
func (f *FIFO[T]) Empty() bool { return f.size == 0 }

// Full reports whether the FIFO is at capacity.
func (f *FIFO[T]) Full() bool { return f.size == len(f.buf) }

// Push enqueues v, reporting whether there was room.
func (f *FIFO[T]) Push(v T) bool {
	if f.Full() {
		return false
	}
	f.buf[(f.head+f.size)%len(f.buf)] = v
	f.size++
	return true
}

// Pop dequeues the oldest element.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if f.Empty() {
		return zero, false
	}
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.size--
	return v, true
}

// Peek returns the element at offset positions from the head without
// removing it. Peek(0) is the next element to pop.
func (f *FIFO[T]) Peek(offset int) (T, bool) {
	var zero T
	if offset < 0 || offset >= f.size {
		return zero, false
	}
	return f.buf[(f.head+offset)%len(f.buf)], true
}
