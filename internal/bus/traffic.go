package bus

import (
	"fmt"

	"divot/internal/rng"
)

// TrafficPattern selects the payload statistics a traffic generator emits.
type TrafficPattern int

const (
	// PatternRandom emits uniformly random bytes — typical application
	// data after compression/encryption.
	PatternRandom TrafficPattern = iota
	// PatternZeros emits all-zero payloads — the pathological case for an
	// unscrambled link: no edges at all.
	PatternZeros
	// PatternWalkingOnes cycles a single set bit through each byte —
	// a classic memory-test stimulus.
	PatternWalkingOnes
)

// String names the pattern.
func (p TrafficPattern) String() string {
	switch p {
	case PatternRandom:
		return "random"
	case PatternZeros:
		return "zeros"
	case PatternWalkingOnes:
		return "walking-ones"
	}
	return fmt.Sprintf("TrafficPattern(%d)", int(p))
}

// TrafficGenerator produces payload bytes for the link.
type TrafficGenerator struct {
	Pattern TrafficPattern
	stream  *rng.Stream
	counter int
}

// NewTrafficGenerator returns a generator for the given pattern.
func NewTrafficGenerator(p TrafficPattern, stream *rng.Stream) *TrafficGenerator {
	return &TrafficGenerator{Pattern: p, stream: stream}
}

// Next fills buf with the next payload bytes.
func (g *TrafficGenerator) Next(buf []byte) {
	switch g.Pattern {
	case PatternRandom:
		g.stream.Bytes(buf)
	case PatternZeros:
		for i := range buf {
			buf[i] = 0
		}
	case PatternWalkingOnes:
		for i := range buf {
			buf[i] = 1 << (g.counter % 8)
			g.counter++
		}
	}
}
