package bus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScramblerWhitensZeros(t *testing.T) {
	s := NewScrambler()
	bits := make([]uint8, 8192)
	s.ScrambleBits(bits)
	density := OnesDensity(bits)
	if math.Abs(density-0.5) > 0.05 {
		t.Errorf("scrambled all-zeros density = %v, want ~0.5", density)
	}
	trig := TriggerOpportunities(bits)
	rate := float64(trig) / float64(len(bits))
	if math.Abs(rate-0.25) > 0.05 {
		t.Errorf("trigger rate on scrambled zeros = %v, want ~0.25", rate)
	}
}

func TestScramblerRoundTrip(t *testing.T) {
	// Additive scrambling is its own inverse when both sides use identical
	// keystreams.
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		tx := NewScrambler()
		rx := NewScrambler()
		bits := BytesToBits(data)
		scrambled := tx.ScrambleBits(append([]uint8(nil), bits...))
		descrambled := rx.ScrambleBits(append([]uint8(nil), scrambled...))
		for i := range bits {
			if bits[i] != descrambled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScramblerPeriod(t *testing.T) {
	// A maximal-length 7-bit LFSR has period 127.
	s := NewScrambler()
	first := make([]uint8, 127)
	for i := range first {
		first[i] = s.NextBit()
	}
	for i := 0; i < 127; i++ {
		if s.NextBit() != first[i] {
			t.Fatalf("keystream not periodic with 127 at position %d", i)
		}
	}
	// And it is not shorter: the first period must contain both values.
	if d := OnesDensity(first); d == 0 || d == 1 {
		t.Error("degenerate keystream")
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		back := BitsToBytes(bits)
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if data[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsToBytesPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BitsToBytes(make([]uint8, 7))
}

func TestTriggerOpportunitiesKnown(t *testing.T) {
	// 1,0 transitions: positions (0,1) and (3,4).
	bits := []uint8{1, 0, 1, 1, 0, 0, 1}
	if got := TriggerOpportunities(bits); got != 2 {
		t.Errorf("TriggerOpportunities = %d, want 2", got)
	}
	if TriggerOpportunities(nil) != 0 {
		t.Error("empty stream should have no triggers")
	}
}

func TestOnesDensityEdge(t *testing.T) {
	if OnesDensity(nil) != 0 {
		t.Error("empty density should be 0")
	}
	if OnesDensity([]uint8{1, 1, 0, 0}) != 0.5 {
		t.Error("density of half ones should be 0.5")
	}
}
