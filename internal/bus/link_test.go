package bus

import (
	"math"
	"testing"

	"divot/internal/rng"
	"divot/internal/txline"
)

func newTestLink(p TrafficPattern, seed uint64) *Link {
	stream := rng.New(seed)
	line := txline.New("lane0", txline.DefaultConfig(), stream.Child("line"))
	return NewLink(line, p, stream)
}

func TestLinkRandomTrafficTriggerRate(t *testing.T) {
	l := newTestLink(PatternRandom, 1)
	rate := l.MeasureTriggerDensity(20000)
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("trigger rate = %v, want ~0.25 for scrambled random data", rate)
	}
	if l.BitsSent() != 20000 {
		t.Errorf("BitsSent = %d", l.BitsSent())
	}
}

func TestLinkZerosStillTriggerThanksToScrambler(t *testing.T) {
	// The pathological all-zeros payload still offers triggers because the
	// scrambler whitens the stream — the §II-E argument.
	l := newTestLink(PatternZeros, 2)
	rate := l.MeasureTriggerDensity(20000)
	if rate < 0.15 {
		t.Errorf("trigger rate on scrambled zeros = %v, want healthy fraction", rate)
	}
}

func TestLinkWalkingOnes(t *testing.T) {
	l := newTestLink(PatternWalkingOnes, 3)
	rate := l.MeasureTriggerDensity(20000)
	if rate <= 0 {
		t.Error("walking-ones traffic should still trigger")
	}
}

func TestLinkStepNeverUnderruns(t *testing.T) {
	l := newTestLink(PatternRandom, 4)
	for i := 0; i < 1000; i++ {
		l.Step()
	}
}

func TestTrafficPatternString(t *testing.T) {
	if PatternRandom.String() != "random" ||
		PatternZeros.String() != "zeros" ||
		PatternWalkingOnes.String() != "walking-ones" {
		t.Error("unexpected pattern names")
	}
	if TrafficPattern(9).String() == "" {
		t.Error("unknown pattern should still format")
	}
}

func TestTrafficGeneratorPatterns(t *testing.T) {
	s := rng.New(5)
	var buf [16]byte

	g := NewTrafficGenerator(PatternZeros, s)
	g.Next(buf[:])
	for _, b := range buf {
		if b != 0 {
			t.Fatal("zeros pattern emitted nonzero")
		}
	}

	g = NewTrafficGenerator(PatternWalkingOnes, s)
	g.Next(buf[:])
	if buf[0] != 1 || buf[1] != 2 || buf[7] != 128 || buf[8] != 1 {
		t.Errorf("walking ones = %v", buf[:9])
	}

	g = NewTrafficGenerator(PatternRandom, s)
	g.Next(buf[:])
	allSame := true
	for _, b := range buf[1:] {
		if b != buf[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("random pattern suspiciously uniform")
	}

	if l := newTestLink(PatternRandom, 6); l.TriggerRate() != 0 {
		t.Error("trigger rate before any steps should be 0")
	}
}

func TestMeasureTriggerDensityPanics(t *testing.T) {
	l := newTestLink(PatternRandom, 7)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.MeasureTriggerDensity(0)
}

func TestLink8b10bEncoding(t *testing.T) {
	stream := rng.New(8)
	line := txline.New("lane8b", txline.DefaultConfig(), stream.Child("line"))
	l := NewLinkEncoded(line, PatternZeros, Encoding8b10b, stream)
	if l.Encoding() != Encoding8b10b {
		t.Fatalf("Encoding = %v", l.Encoding())
	}
	rate := l.MeasureTriggerDensity(20000)
	// 8b/10b guarantees edges even on all-zero payloads.
	if rate < 0.15 {
		t.Errorf("8b/10b trigger rate on zeros = %v", rate)
	}
}

func TestEncodingString(t *testing.T) {
	if EncodingScrambler.String() != "scrambler" || Encoding8b10b.String() != "8b10b" ||
		Encoding(9).String() == "" {
		t.Error("encoding names")
	}
}
