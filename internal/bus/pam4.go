package bus

import (
	"fmt"

	"divot/internal/rng"
	"divot/internal/txline"
)

// PAM4 signaling (§II-D: "a PAM4 protocol has four voltage levels,
// representing a 2-bit value at a time"). Each symbol carries two bits,
// Gray-coded onto four levels so a single-level slip corrupts one bit.
//
// For the iTDR, PAM4 changes the trigger problem: edges come in nine
// amplitudes (level i → level j), and only a repeatable launch shape can be
// averaged. The trigger therefore fires solely on full-swing falling
// transitions (level 3 → level 0), which occur on 1/16 of symbol boundaries
// for whitened traffic — a 4× longer measurement than an NRZ lane's 1→0
// trigger at 1/4 density.

// Pam4Symbol is one 2-bit PAM4 symbol (0..3 = two data bits, Gray-coded to
// the wire level).
type Pam4Symbol uint8

// grayLevel maps the 2-bit value to the wire level index 0..3 (Gray code:
// 00→0, 01→1, 11→2, 10→3).
var grayLevel = [4]uint8{0, 1, 3, 2}

// levelGray is the inverse mapping.
var levelGray = [4]uint8{0, 1, 3, 2}

// Level returns the wire level index (0..3) for the symbol's data bits.
func (s Pam4Symbol) Level() uint8 { return grayLevel[s&3] }

// Pam4FromLevel recovers the data bits from a wire level.
func Pam4FromLevel(level uint8) Pam4Symbol { return Pam4Symbol(levelGray[level&3]) }

// Pam4Voltage converts a wire level to a voltage in [-amplitude, amplitude].
func Pam4Voltage(level uint8, amplitude float64) float64 {
	return amplitude * (2*float64(level&3)/3 - 1)
}

// BytesToPam4 expands bytes into PAM4 symbols, MSB pair first.
func BytesToPam4(data []byte) []Pam4Symbol {
	out := make([]Pam4Symbol, 0, len(data)*4)
	for _, b := range data {
		for shift := 6; shift >= 0; shift -= 2 {
			out = append(out, Pam4Symbol((b>>shift)&3))
		}
	}
	return out
}

// Pam4ToBytes packs symbols back into bytes; the count must be a multiple
// of 4.
func Pam4ToBytes(syms []Pam4Symbol) []byte {
	if len(syms)%4 != 0 {
		panic("bus: PAM4 symbol count not a multiple of 4")
	}
	out := make([]byte, len(syms)/4)
	for i, s := range syms {
		out[i/4] |= byte(s&3) << (6 - 2*(i%4))
	}
	return out
}

// Pam4TriggerOpportunities counts full-swing falling transitions
// (level 3 → level 0) — the iTDR's usable launches on a PAM4 lane.
func Pam4TriggerOpportunities(levels []uint8) int {
	n := 0
	for i := 0; i+1 < len(levels); i++ {
		if levels[i] == 3 && levels[i+1] == 0 {
			n++
		}
	}
	return n
}

// Pam4Lane is a PAM4 serial lane over a protected line: scrambled traffic,
// a symbol FIFO, and the full-swing trigger.
type Pam4Lane struct {
	// Line is the physical trace.
	Line *txline.Line
	// Fifo holds wire levels awaiting launch.
	Fifo *FIFO[uint8]

	scrambler *Scrambler
	traffic   *TrafficGenerator
	sent      int64
	triggers  int64
}

// NewPam4Lane builds a PAM4 lane carrying the given traffic.
func NewPam4Lane(line *txline.Line, pattern TrafficPattern, stream *rng.Stream) *Pam4Lane {
	return &Pam4Lane{
		Line:      line,
		Fifo:      NewFIFO[uint8](64),
		scrambler: NewScrambler(),
		traffic:   NewTrafficGenerator(pattern, stream.Child("traffic")),
	}
}

// refill keeps the FIFO stocked with scrambled symbols' wire levels.
func (l *Pam4Lane) refill() {
	for l.Fifo.Cap()-l.Fifo.Len() >= 4 {
		var payload [1]byte
		l.traffic.Next(payload[:])
		bits := l.scrambler.ScrambleBits(BytesToBits(payload[:]))
		for _, s := range BytesToPam4(BitsToBytes(bits)) {
			l.Fifo.Push(s.Level())
		}
	}
}

// Step launches the next symbol and reports whether this boundary offers the
// iTDR a full-swing falling launch (head level 3, next level 0).
func (l *Pam4Lane) Step() (level uint8, trigger bool) {
	if l.Fifo.Len() < 2 {
		l.refill()
	}
	head, ok := l.Fifo.Pop()
	if !ok {
		panic("bus: PAM4 lane FIFO underrun after refill")
	}
	next, ok := l.Fifo.Peek(0)
	l.sent++
	trigger = ok && head == 3 && next == 0
	if trigger {
		l.triggers++
	}
	return head, trigger
}

// TriggerRate returns the observed full-swing-launch density.
func (l *Pam4Lane) TriggerRate() float64 {
	if l.sent == 0 {
		return 0
	}
	return float64(l.triggers) / float64(l.sent)
}

// MeasureTriggerDensity runs the lane for n symbols and returns the rate.
func (l *Pam4Lane) MeasureTriggerDensity(n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("bus: non-positive sample size %d", n))
	}
	for i := 0; i < n; i++ {
		l.Step()
	}
	return l.TriggerRate()
}
