package bus

import (
	"math"
	"testing"
	"testing/quick"

	"divot/internal/rng"
	"divot/internal/txline"
)

func TestPam4GrayCoding(t *testing.T) {
	// Adjacent levels differ by exactly one data bit (the Gray property).
	for lvl := uint8(0); lvl < 3; lvl++ {
		a := Pam4FromLevel(lvl)
		b := Pam4FromLevel(lvl + 1)
		diff := uint8(a^b) & 3
		bits := 0
		for ; diff != 0; diff >>= 1 {
			bits += int(diff & 1)
		}
		if bits != 1 {
			t.Errorf("levels %d and %d differ by %d bits; Gray coding broken", lvl, lvl+1, bits)
		}
	}
	// Round trip through level mapping.
	for s := Pam4Symbol(0); s < 4; s++ {
		if Pam4FromLevel(s.Level()) != s {
			t.Errorf("symbol %d level round trip failed", s)
		}
	}
}

func TestPam4Voltage(t *testing.T) {
	amp := 0.9
	if v := Pam4Voltage(0, amp); v != -amp {
		t.Errorf("level 0 voltage %v", v)
	}
	if v := Pam4Voltage(3, amp); v != amp {
		t.Errorf("level 3 voltage %v", v)
	}
	gap01 := Pam4Voltage(1, amp) - Pam4Voltage(0, amp)
	gap12 := Pam4Voltage(2, amp) - Pam4Voltage(1, amp)
	if math.Abs(gap01-gap12) > 1e-12 {
		t.Error("levels not equally spaced")
	}
}

func TestPam4BytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		syms := BytesToPam4(data)
		back := Pam4ToBytes(syms)
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPam4ToBytesPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Pam4ToBytes(make([]Pam4Symbol, 3))
}

func TestPam4TriggerOpportunities(t *testing.T) {
	levels := []uint8{3, 0, 1, 3, 0, 3, 3, 0}
	if got := Pam4TriggerOpportunities(levels); got != 3 {
		t.Errorf("opportunities = %d, want 3", got)
	}
	if Pam4TriggerOpportunities(nil) != 0 {
		t.Error("empty stream")
	}
}

func TestPam4LaneTriggerDensity(t *testing.T) {
	stream := rng.New(9)
	line := txline.New("pam4", txline.DefaultConfig(), stream.Child("line"))
	l := NewPam4Lane(line, PatternRandom, stream)
	rate := l.MeasureTriggerDensity(40000)
	// Full-swing falling launches on whitened traffic: P(3 then 0) = 1/16.
	if math.Abs(rate-1.0/16) > 0.01 {
		t.Errorf("PAM4 trigger density %v, want ~1/16", rate)
	}
}

func TestPam4LaneZerosStillTrigger(t *testing.T) {
	stream := rng.New(10)
	line := txline.New("pam4z", txline.DefaultConfig(), stream.Child("line"))
	l := NewPam4Lane(line, PatternZeros, stream)
	rate := l.MeasureTriggerDensity(40000)
	if rate < 0.03 {
		t.Errorf("scrambled zeros PAM4 density %v too low", rate)
	}
}

func TestPam4LaneMeasurePanics(t *testing.T) {
	stream := rng.New(11)
	line := txline.New("pam4p", txline.DefaultConfig(), stream.Child("line"))
	l := NewPam4Lane(line, PatternRandom, stream)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.MeasureTriggerDensity(0)
}
