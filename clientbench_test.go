package divot_test

// Micro-benchmark of the remote attestation round trip: the client SDK's
// Attest against a live HTTP server whose handler runs a real calibrated
// link's Authenticate — transport, envelope encoding/decoding, and the
// spot-check measurement itself, end to end. This is the per-verification
// latency a remote verifier pays on a healthy network (retries never fire).

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"divot"
	"divot/client"
	"divot/internal/attest"
)

func BenchmarkClientRoundTrip(b *testing.B) {
	sys := divot.NewSystem(77, divot.DefaultConfig())
	link, err := sys.NewLink("dimm0")
	if err != nil {
		b.Fatal(err)
	}
	if err := link.Calibrate(); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		res := link.Authenticate()
		attest.WriteData(w, http.StatusOK, attest.AttestResponse{
			Results: []attest.AuthReport{{
				ID: "dimm0", Accepted: res.Accepted, Score: res.Score,
				Tampered: res.Tampered, TamperPosition: res.TamperPosition,
				Health: "ok",
			}},
			AllAccepted: res.Accepted,
		})
	}))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Attest(ctx, "dimm0")
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllAccepted {
			b.Fatal("clean bus rejected during benchmark")
		}
	}
}
