// Tamperscan: runtime tamper detection and localization. A protected bus is
// monitored while three attack classes from the paper — a wire tap, a
// non-contact magnetic probe, and a trace-milling supply-chain cut — are
// mounted one after another; each is detected and located along the line,
// and the wire tap's permanent scar remains visible after the wire is gone.
package main

import (
	"fmt"
	"log"

	"divot"
)

func main() {
	sys := divot.NewSystem(11, divot.DefaultConfig())
	bus, err := sys.NewLink("io-bus")
	if err != nil {
		log.Fatal(err)
	}
	if err := bus.Calibrate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bus calibrated; scanning for tampering...")

	scan := func(label string) []divot.Alert {
		alerts, err := bus.MonitorOnce()
		if err != nil {
			log.Fatal(err)
		}
		if len(alerts) == 0 {
			fmt.Printf("%-34s clean\n", label)
		}
		for _, a := range alerts {
			fmt.Printf("%-34s %s\n", label, a)
		}
		return alerts
	}

	scan("baseline:")

	fmt.Println("\n-- wire tap soldered at 100 mm --")
	tap := divot.NewWireTap(0.10)
	tap.Apply(bus.Line)
	scan("tap attached:")
	tap.Remove(bus.Line)
	fmt.Println("   (wire detached; solder scar remains)")
	scan("after removal:")

	fmt.Println("\n-- magnetic near-field probe at 180 mm --")
	probe := divot.NewMagneticProbe(0.18)
	probe.Apply(bus.Line)
	scan("probe held over trace:")
	probe.Remove(bus.Line)
	fmt.Println("   (probe lifted; non-contact, no residue — but the scar persists)")
	scan("after probe removed:")

	fmt.Println("\n-- supply-chain trace milling at 220 mm --")
	divot.NewTraceMill(0.22).Apply(bus.Line)
	scan("milled trace:")

	fmt.Printf("\ntotal alerts: %d; each monitoring round costs %.1f µs of bus time\n",
		len(bus.Alerts), bus.MeasurementDuration()*1e6)
}
