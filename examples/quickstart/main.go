// Quickstart: manufacture a DIVOT-protected bus, calibrate it, authenticate
// it, and watch an impostor bus get rejected — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"divot"
)

func main() {
	// A System is a reproducible universe: lines, instruments and
	// environments all derive from the seed.
	sys := divot.NewSystem(2026, divot.DefaultConfig())

	// Manufacture a protected bus. Its impedance inhomogeneity pattern
	// (IIP) is drawn at construction — the physical unclonable function.
	bus, err := sys.NewLink("memory-bus")
	if err != nil {
		log.Fatal(err)
	}

	// Calibration (§III): both endpoints measure the bus several times,
	// average, and store the fingerprint. The authentication gates open.
	if err := bus.Calibrate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %q: one IIP measurement takes %.1f µs\n",
		bus.ID, bus.MeasurementDuration()*1e6)

	// Runtime authentication: measure and match.
	res := bus.Authenticate()
	fmt.Printf("genuine bus: accepted=%v score=%.4f\n", res.Accepted, res.Score)

	// Monitoring rounds drive the gates and collect alerts.
	if alerts, err := bus.MonitorN(3); err != nil {
		log.Fatal(err)
	} else if len(alerts) == 0 {
		fmt.Println("3 monitoring rounds: clean")
	}

	// An attacker substitutes the memory module (same model number — only
	// the chip-to-chip impedance spread differs).
	swap := divot.NewModuleSwap(sys.Config().Line, sys.Stream("attacker"))
	swap.Apply(bus.Line)
	res = bus.Authenticate()
	fmt.Printf("after module swap: accepted=%v (tamper=%v at %.0f mm)\n",
		res.Accepted, res.Tampered, res.TamperPosition*1e3)

	// Restore the genuine module: the fingerprint matches again.
	swap.Remove(bus.Line)
	res = bus.Authenticate()
	fmt.Printf("module restored: accepted=%v score=%.4f\n", res.Accepted, res.Score)
}
