// Faultdrill: the fault-tolerant monitoring protocol, end to end. One
// protected bus ages through the faults a real instrument accumulates — a
// one-shot EMI burst, dead ETS bins, a drifting PLL timebase — and the
// hardened protocol (confirm-on-suspect, dead-bin masking, drift-guarded
// re-enrollment) rides through all of it without a single false alarm. Then
// an interposer is spliced in on top of the accumulated faults: the alarm
// fires anyway, the refresh guards refuse to launder the attack into the
// enrollment, and the reactor escalates.
package main

import (
	"fmt"
	"log"

	"divot"
)

func main() {
	sys := divot.NewSystem(7, divot.DefaultConfig())
	bus, err := sys.NewLink("dimm0")
	if err != nil {
		log.Fatal(err)
	}
	reactor, err := divot.NewReactor(divot.DefaultReactionPolicy())
	if err != nil {
		log.Fatal(err)
	}

	// The CPU-side instrument carries this drill's fault load. Schedules
	// count measurement sequence numbers; monitoring starts right after
	// calibration, and each phase arms permanently from its onset.
	onset := uint64(sys.Config().Engine.CalibrationMeasurements() + 1)
	plane := divot.NewFaultPlane(sys.Stream("faults"),
		divot.NewEMIGlitch(0.05, divot.FaultOnce(onset)),        // phase 1: transient
		divot.NewDeadBinField(0.08, divot.FaultFrom(onset+8)),   // phase 2: aging bins
		divot.NewPhaseDrift(0.3e-12, divot.FaultFrom(onset+40)), // phase 3: PLL aging
	)
	bus.CPU.Instrument().SetInjector(plane)

	if err := bus.Calibrate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bus calibrated; running the drill...")

	logged := 0
	drill := func(phase string, rounds int) {
		for i := 0; i < rounds; i++ {
			alerts, err := bus.MonitorOnce()
			if err != nil {
				log.Fatal(err)
			}
			reactor.ObserveHealth(alerts, bus.Health())
			for ; logged < len(reactor.Log); logged++ {
				e := reactor.Log[logged]
				fmt.Printf("  round %2d: %s -> %s (%s)\n", e.Round, e.Action, e.State, e.Cause)
			}
		}
		h := bus.Health()
		fmt.Printf("%-34s reactor %-8s health %-8s masked %4.1f%%  refreshes %d  score %.3f\n",
			phase+":", reactor.State(), h.State(), 100*h.CPU.MaskedFraction,
			h.CPU.Reenrollments, h.CPU.LastScore)
	}

	fmt.Println("\n-- phase 1: a one-shot 50 mV EMI burst hits the comparator --")
	drill("transient absorbed", 3)

	fmt.Println("\n-- phase 2: 8% of ETS bins die (aging sampler) --")
	drill("degraded, still authenticating", 12)

	fmt.Println("\n-- phase 3: the PLL timebase drifts 0.3 ps per measurement --")
	drill("drift re-enrolled away", 40)

	fmt.Println("\n-- phase 4: an interposer is spliced in at 125 mm --")
	beforeAttack := len(bus.Alerts)
	divot.NewInterposer(0.125).Apply(bus.Line)
	drill("attack detected through it all", 6)

	fmt.Printf("\nalerts before the attack landed: %d; raised by the attack: %d\n",
		beforeAttack, len(bus.Alerts)-beforeAttack)
}
