// Protecteddrive: DIVOT on a storage link (the paper's §VI future-work
// direction). A block device is paired with its host over the link
// fingerprint; pulling the drive and mounting it in another chassis leaves
// the media sealed — before any full-disk-encryption key is even in play.
package main

import (
	"fmt"
	"log"

	"divot"
	"divot/internal/sim"
)

func main() {
	sys := divot.NewSystem(99, divot.DefaultConfig())
	st, err := sys.NewStorageSystem("ssd0", 1<<20, divot.StorageHostConfig{
		LinkClockHz: 1e9, CmdOverheadCycles: 64, MediaCycles: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== pairing drive and host (installation time) ==")
	if err := st.Calibrate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one fingerprint measurement costs %.1f µs of link time\n\n",
		st.Bus.MeasurementDuration()*1e6)

	fmt.Println("== normal I/O ==")
	secret := make([]byte, divot.StorageBlockSize)
	copy(secret, []byte("TOP-SECRET: master key material"))
	st.WriteBlock(4242, secret)
	st.ReadBlock(4242)
	st.RunFor(sim.FromSeconds(3 * st.Bus.MeasurementDuration()))
	for _, c := range st.Completions() {
		fmt.Printf("cmd %d: %v (latency %v)\n", c.ID, c.Status, c.Latency)
	}

	fmt.Println("\n== drive stolen: mounted in the attacker's chassis ==")
	thief := divot.NewColdBootSwap(sys.Config().Line, sys.Stream("thief"))
	home := st.Bus.Module.ObservedLine()
	st.Bus.Module.SetObservedLine(thief.BusSeenByModule())
	st.RunFor(sim.FromSeconds(3 * st.Bus.MeasurementDuration()))
	st.ClearCompletions()
	st.ReadBlock(4242)
	st.RunFor(sim.FromSeconds(2 * st.Bus.MeasurementDuration()))
	for _, c := range st.Completions() {
		fmt.Printf("attacker's read: %v — media refuses to serve\n", c.Status)
	}
	fmt.Printf("drive gate authorized: %v; refused accesses: %d\n",
		st.Bus.Module.Gate.Authorized(), st.Drive.Refused)

	fmt.Println("\n== drive returned to its paired host ==")
	st.Bus.Module.SetObservedLine(home)
	st.RunFor(sim.FromSeconds(3 * st.Bus.MeasurementDuration()))
	st.ClearCompletions()
	st.ReadBlock(4242)
	st.RunFor(sim.FromSeconds(2 * st.Bus.MeasurementDuration()))
	for _, c := range st.Completions() {
		fmt.Printf("read on paired host: %v, first bytes %q\n", c.Status, c.Data[:10])
	}
}
