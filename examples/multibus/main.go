// Multibus: protecting many buses at once, and one bus with many wires. One
// PLL (phase stepper) and one PDM modulator are shared by every iTDR on a
// chip, so the per-bus cost is small and flat; and monitoring several wires
// of one bus shrinks the impostor-acceptance probability exponentially —
// the paper's multi-wire future-work direction, here via core.MultiLink.
package main

import (
	"fmt"
	"log"

	"divot"
)

func main() {
	// Hardware cost of a fleet: the shared PLL/modulator amortizes.
	fmt.Println("== fleet utilization (shared PLL + modulator) ==")
	cfg := divot.DefaultConfig().Engine.ITDR
	one := divot.ResourceModel(cfg)
	fmt.Printf("one iTDR: %d registers, %d LUTs (%.0f%% counters)\n",
		one.Registers, one.LUTs, 100*one.CounterShare())
	for _, n := range []int{1, 8, 32} {
		f := divot.FleetUtilization(cfg, n)
		fmt.Printf("%2d buses: %5d registers, %5d LUTs (%.1f regs/bus)\n",
			n, f.Registers, f.LUTs, float64(f.Registers)/float64(n))
	}

	// Multi-wire bus: a 4-wire MultiLink with fused gates.
	fmt.Println("\n== 4-wire bus authentication (fused gates) ==")
	sys := divot.NewSystem(23, divot.DefaultConfig())
	bus, err := sys.NewMultiLink("bus-a", 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := bus.Calibrate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated; fused gates cpu=%v module=%v\n",
		bus.CPUGate.Authorized(), bus.ModuleGate.Authorized())

	if alerts, err := bus.MonitorOnce(); err != nil {
		log.Fatal(err)
	} else if len(alerts) == 0 {
		fmt.Println("monitoring round: all 4 wires clean")
	}

	// An attacker reroutes one wire of the bundle through an interposer.
	fmt.Println("\n(wire 2 rerouted through the attacker's interposer)")
	swap := divot.NewColdBootSwap(sys.Config().Line, sys.Stream("interposer"))
	bus.Wires[2].CPU.SetObservedLine(swap.BusSeenByModule())
	alerts, err := bus.MonitorOnce()
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range alerts {
		fmt.Println("ALERT", a)
	}
	fmt.Printf("fused gates: cpu=%v module=%v — one bad wire locks the bus\n",
		bus.CPUGate.Authorized(), bus.ModuleGate.Authorized())

	// A non-contact probe on a single wire: localized alarm, traffic keeps
	// its authorization.
	fmt.Println("\n(magnetic probe held over wire 1 at 140 mm)")
	bus.Wires[2].CPU.SetObservedLine(bus.Wires[2].Line) // restore wire 2
	probe := divot.NewMagneticProbe(0.14)
	probe.Apply(bus.Wires[1].Line)
	if alerts, err := bus.MonitorOnce(); err != nil {
		log.Fatal(err)
	} else {
		for _, a := range alerts {
			fmt.Println("ALERT", a)
		}
	}
	fmt.Printf("fused gates: cpu=%v module=%v — probing alarms without halting\n",
		bus.CPUGate.Authorized(), bus.ModuleGate.Authorized())
}
