// Fleetwatch: the telemetry subsystem in-process, without the divotd
// daemon. One sink fan-out feeds three consumers at once — a live event-bus
// subscription (what an operator dashboard would tail), a metrics registry
// (what Prometheus would scrape), and a JSONL audit log — while a fleet of
// three buses is monitored and an interposer lands on one of them. Event
// content is deterministic: only the audit sink's wall-clock stamp differs
// between runs.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"divot"
)

func main() {
	sys := divot.NewSystem(42, divot.DefaultConfig())

	// One fan-out, three consumers. The bus subscription is bounded (queue
	// of 256) and never blocks the monitoring hot path: a slow consumer
	// drops events and the drop counter says how many.
	bus := divot.NewTelemetryBus()
	sub := bus.Subscribe(256, divot.EventAlert, divot.EventGate, divot.EventHealth)
	reg := divot.NewMetricsRegistry()
	var auditBuf bytes.Buffer
	audit := divot.NewAuditLog(&auditBuf)
	sys.SetSink(divot.TelemetryFanout(bus, divot.NewMetricsSink(reg), audit))

	fmt.Println("== fleet of three protected buses ==")
	for _, id := range []string{"dimm0", "dimm1", "dimm2"} {
		l, err := sys.NewLink(id)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.Calibrate(); err != nil {
			log.Fatal(err)
		}
	}

	run := func(rounds int) {
		for i := 0; i < rounds; i++ {
			if _, err := sys.MonitorAll(); err != nil {
				log.Fatal(err)
			}
		}
	}
	run(3)
	fmt.Printf("3 clean rounds: %d events published, %d dropped\n",
		bus.Published(), bus.Dropped())

	fmt.Println("\n== interposer inserted on dimm1 at 100 mm ==")
	l, _ := sys.Link("dimm1")
	divot.NewInterposer(0.10).Apply(l.Line)
	run(5)

	// The subscription saw only the kinds it asked for.
	sub.Close()
	fmt.Println("\nsubscribed events (alert/gate/health only):")
	for ev := range sub.Events() {
		fmt.Printf("  seq=%-3d %-7s link=%s side=%-6s %s→%s %s\n",
			ev.Seq, ev.Kind, ev.Link, ev.Side, ev.From, ev.To, ev.Detail)
	}

	// The registry holds the same story as gauges and counters.
	fmt.Println("\nscrape (divot_gate_open / divot_alerts_total):")
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		log.Fatal(err)
	}
	for _, line := range bytes.Split(prom.Bytes(), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("divot_gate_open")) ||
			bytes.HasPrefix(line, []byte("divot_alerts_total")) {
			fmt.Printf("  %s\n", line)
		}
	}

	// And the audit log has every event as one JSON line.
	if err := audit.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit log: %d JSONL lines; first line:\n", audit.Lines())
	if i := bytes.IndexByte(auditBuf.Bytes(), '\n'); i > 0 {
		fmt.Printf("  %s\n", auditBuf.Bytes()[:i])
	}

	if !l.CPU.Gate.Authorized() {
		fmt.Fprintln(os.Stdout, "\ndimm1 CPU gate closed — interposer locked out")
	}
}
