// Protectednic: DIVOT on a network interface (the paper's §VI direction).
// A framed MAC runs over an 8b/10b-coded serial lane whose fingerprint is
// monitored; tapping the cable raises a localized alarm while traffic keeps
// flowing, and splicing an interposer into the cable takes the port down
// even though every frame is forwarded bit-exact.
package main

import (
	"fmt"
	"log"

	"divot"
	"divot/internal/netlink"
)

func main() {
	sys := divot.NewSystem(55, divot.DefaultConfig())
	cable, err := sys.NewLink("nic-cable")
	if err != nil {
		log.Fatal(err)
	}
	if err := cable.Calibrate(); err != nil {
		log.Fatal(err)
	}

	nicPort := netlink.NewPort(0x00A1, cable.CPU.Gate)
	switchPort := netlink.NewPort(0x00B2, cable.Module.Gate)
	var rx netlink.Deframer

	send := func(label string, payload string) {
		symbols, err := nicPort.TransmitFramed(switchPort.Addr, []byte(payload))
		if err != nil {
			fmt.Printf("%-28s tx refused: %v\n", label, err)
			return
		}
		frames := rx.Push(symbols)
		for _, f := range frames {
			fmt.Printf("%-28s delivered %q (%04x→%04x)\n", label, f.Payload, f.Src, f.Dst)
		}
	}

	fmt.Println("== calibrated link ==")
	send("clean link:", "hello switch")

	fmt.Println("\n== magnetic probe held over the cable at 160 mm ==")
	probe := divot.NewMagneticProbe(0.16)
	probe.Apply(cable.Line)
	alerts, err := cable.MonitorOnce()
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range alerts {
		fmt.Println("ALERT", a)
	}
	send("probed (alarmed, flowing):", "frames still pass")
	probe.Remove(cable.Line)
	cable.MonitorOnce()

	fmt.Println("\n== interposer spliced into the cable at 120 mm ==")
	mitm := divot.NewInterposer(0.12)
	mitm.Apply(cable.Line)
	if alerts, err := cable.MonitorOnce(); err != nil {
		log.Fatal(err)
	} else {
		for _, a := range alerts {
			fmt.Println("ALERT", a)
		}
	}
	send("interposed:", "this must not leave the NIC")
	fmt.Printf("port stats: sent=%d dropped=%d\n",
		nicPort.Stats.FramesSent, nicPort.Stats.FramesDropped)

	fmt.Println("\n== interposer removed ==")
	mitm.Remove(cable.Line)
	cable.MonitorOnce()
	send("restored:", "back in business")
}
