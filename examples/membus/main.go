// Membus: the paper's Fig. 6 example design end to end. A DDR-style memory
// controller and an SDRAM module run traffic over a DIVOT-protected bus on a
// discrete-event timeline; a cold-boot theft is blocked by the module-side
// gate, and returning the module to its paired bus restores service.
package main

import (
	"fmt"
	"log"

	"divot"
	"divot/internal/sim"
)

func main() {
	sys := divot.NewSystem(7, divot.DefaultConfig())
	m, err := sys.NewMemorySystem("dimm0", divot.DefaultMemoryConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== calibration (installation time) ==")
	if err := m.Calibrate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gates: cpu=%v module=%v\n\n",
		m.Bus.CPU.Gate.Authorized(), m.Bus.Module.Gate.Authorized())

	fmt.Println("== normal operation: writes then reads, monitoring concurrent ==")
	geom := divot.DefaultMemoryConfig().Geometry
	payload := make([]byte, geom.BurstBytes)
	const n = 32
	for i := 0; i < n; i++ {
		for j := range payload {
			payload[j] = byte(i + j)
		}
		m.Write(divot.MemAddress{Bank: i % 8, Row: i, Col: i}, payload)
	}
	for i := 0; i < n; i++ {
		m.Read(divot.MemAddress{Bank: i % 8, Row: i, Col: i})
	}
	if err := m.Drain(2*n, 100*sim.Millisecond); err != nil {
		log.Fatal(err)
	}
	// Responses arrive in completion order (FR-FCFS reorders), so count
	// the read completions by their returned data.
	verified := 0
	for _, r := range m.Responses() {
		if r.Status == divot.StatusOK && len(r.Data) > 0 {
			verified++
		}
	}
	stats := m.Controller.Stats
	fmt.Printf("%d writes + %d reads OK (%d verified), avg latency %v, row hit rate %.0f%%\n",
		n, n, verified, stats.AvgLatency(), 100*stats.RowHitRate())
	fmt.Printf("monitor alerts so far: %d\n\n", len(m.Bus.Alerts))

	fmt.Println("== cold-boot attack: module moved to the attacker's machine ==")
	cb := divot.NewColdBootSwap(sys.Config().Line, sys.Stream("attacker"))
	genuineBus := m.Bus.Module.ObservedLine()
	m.Bus.Module.SetObservedLine(cb.BusSeenByModule())
	m.RunFor(sim.FromSeconds(3 * m.Bus.MeasurementDuration()))
	fmt.Printf("module-side gate after %d alerts: authorized=%v\n",
		len(m.Bus.Alerts), m.Bus.Module.Gate.Authorized())

	m.ClearResponses()
	m.Read(divot.MemAddress{Bank: 0, Row: 0, Col: 0})
	if err := m.Drain(1, 10*sim.Millisecond); err != nil {
		fmt.Println("attacker's read: stalled (never serviced)")
	} else {
		fmt.Printf("attacker's read: %v — remanent data stays sealed\n",
			m.Responses()[0].Status)
	}

	fmt.Println("\n== module returned to its paired bus ==")
	m.Bus.Module.SetObservedLine(genuineBus)
	m.RunFor(sim.FromSeconds(3 * m.Bus.MeasurementDuration()))
	m.ClearResponses()
	m.Read(divot.MemAddress{Bank: 0, Row: 0, Col: 0})
	if err := m.Drain(1, 10*sim.Millisecond); err != nil {
		log.Fatal("service did not recover: ", err)
	}
	fmt.Printf("read after restoration: %v; gates cpu=%v module=%v\n",
		m.Responses()[0].Status,
		m.Bus.CPU.Gate.Authorized(), m.Bus.Module.Gate.Authorized())
	m.StopMonitor()
}
