package divot_test

// One benchmark per table/figure of the paper's evaluation, as indexed in
// DESIGN.md, plus micro-benchmarks of the hot paths. Each experiment bench
// regenerates the corresponding artifact in quick mode; run
// cmd/divotbench -mode full for the paper-scale statistics.

import (
	"testing"

	"divot"
	"divot/internal/exper"
	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/sim"
	"divot/internal/txline"
)

// benchExperiment runs one registered experiment generator per iteration.
func benchExperiment(b *testing.B, id string) {
	gen, ok := exper.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := gen(uint64(i)+1, exper.Quick)
		if len(r.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFig2APCTransfer(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3PDMVernier(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4PDMLinearRange(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5ETS(b *testing.B)             { benchExperiment(b, "fig5") }
func BenchmarkFig6MemoryBus(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7aDistributions(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7bROC(b *testing.B)            { benchExperiment(b, "fig7b") }
func BenchmarkFig8Temperature(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkVibrationEER(b *testing.B)        { benchExperiment(b, "vib") }
func BenchmarkEMIEER(b *testing.B)              { benchExperiment(b, "emi") }
func BenchmarkFig9LoadMod(b *testing.B)         { benchExperiment(b, "fig9bc") }
func BenchmarkFig9WireTap(b *testing.B)         { benchExperiment(b, "fig9ef") }
func BenchmarkFig9MagProbe(b *testing.B)        { benchExperiment(b, "fig9hi") }
func BenchmarkUtilizationModel(b *testing.B)    { benchExperiment(b, "util") }
func BenchmarkDetectionLatency(b *testing.B)    { benchExperiment(b, "latency") }
func BenchmarkMultiWireAblation(b *testing.B)   { benchExperiment(b, "multiwire") }
func BenchmarkCoprimeAblation(b *testing.B)     { benchExperiment(b, "coprime") }
func BenchmarkTriggerAblation(b *testing.B)     { benchExperiment(b, "trigger") }
func BenchmarkTrialsAblation(b *testing.B)      { benchExperiment(b, "trials") }
func BenchmarkReprAblation(b *testing.B)        { benchExperiment(b, "repr") }
func BenchmarkAlignmentExtension(b *testing.B)  { benchExperiment(b, "align") }
func BenchmarkCloneResistance(b *testing.B)     { benchExperiment(b, "clone") }
func BenchmarkInterposerDetection(b *testing.B) { benchExperiment(b, "mitm") }
func BenchmarkSecondOrderAblation(b *testing.B) { benchExperiment(b, "secorder") }
func BenchmarkPagePolicyAblation(b *testing.B)  { benchExperiment(b, "pagepolicy") }
func BenchmarkOffsetDriftAblation(b *testing.B) { benchExperiment(b, "offsetdrift") }
func BenchmarkJitterAblation(b *testing.B)      { benchExperiment(b, "jitter") }
func BenchmarkSharingAblation(b *testing.B)     { benchExperiment(b, "sharing") }
func BenchmarkCrosstalkAblation(b *testing.B)   { benchExperiment(b, "crosstalk") }
func BenchmarkBaselines(b *testing.B)           { benchExperiment(b, "baselines") }

// --- micro-benchmarks of the measurement and decision hot paths ---

// BenchmarkIIPMeasurement times one full iTDR acquisition (8575 one-bit
// trials, 343-bin reconstruction) — the simulated counterpart of the 50 µs
// hardware measurement. One warm-up measurement runs before the clock so
// the one-time shared-table builds (composite-CDF warm-up, inverse-table
// promotion) don't smear across the steady-state per-capture cost.
func BenchmarkIIPMeasurement(b *testing.B) {
	stream := rng.New(1)
	line := txline.New("L", txline.DefaultConfig(), stream.Child("line"))
	r := itdr.MustNew(itdr.DefaultConfig(), txline.DefaultProbe(), nil, stream.Child("itdr"))
	env := txline.RoomTemperature()
	if m := r.Measure(line, env); m.Trials == 0 {
		b.Fatal("empty warm-up measurement")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := r.Measure(line, env)
		if m.Trials == 0 {
			b.Fatal("empty measurement")
		}
	}
}

// BenchmarkCalibrate times one warm cold-enrollment of a standing link —
// the per-link unit cost a fleet cold start pays: EnrollMeasurements
// arena-path captures per endpoint folded through the streaming average.
// The first Calibrate before the clock absorbs the one-time builds (arena
// sizing, shared warm-up tables) and auto-derives the tamper threshold, so
// the timed iterations measure exactly the repeating enrollment work.
func BenchmarkCalibrate(b *testing.B) {
	sys := divot.NewSystem(1, divot.DefaultConfig())
	l, err := sys.NewLink("bus0")
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Calibrate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Calibrate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReflectionSynthesis times the physics layer alone.
func BenchmarkReflectionSynthesis(b *testing.B) {
	line := txline.New("L", txline.DefaultConfig(), rng.New(2))
	probe := txline.DefaultProbe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := line.Reflect(probe, 0, 1, 89.6e9, 343)
		if w.Len() == 0 {
			b.Fatal("empty waveform")
		}
	}
}

// BenchmarkSimilarity times the Eq. 4 scoring of two fingerprints.
func BenchmarkSimilarity(b *testing.B) {
	stream := rng.New(3)
	line := txline.New("L", txline.DefaultConfig(), stream.Child("line"))
	r := itdr.MustNew(itdr.DefaultConfig(), txline.DefaultProbe(), nil, stream.Child("itdr"))
	pipe := fingerprint.DefaultPipeline()
	env := txline.RoomTemperature()
	x := pipe.FromWaveform(r.Measure(line, env).IIP)
	y := pipe.FromWaveform(r.Measure(line, env).IIP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fingerprint.Similarity(x, y) == 0 {
			b.Fatal("degenerate similarity")
		}
	}
}

// BenchmarkErrorFunction times the Eq. 5 tamper scan.
func BenchmarkErrorFunction(b *testing.B) {
	stream := rng.New(4)
	line := txline.New("L", txline.DefaultConfig(), stream.Child("line"))
	r := itdr.MustNew(itdr.DefaultConfig(), txline.DefaultProbe(), nil, stream.Child("itdr"))
	pipe := fingerprint.DefaultPipeline()
	env := txline.RoomTemperature()
	x := pipe.FromWaveform(r.Measure(line, env).IIP)
	y := pipe.FromWaveform(r.Measure(line, env).IIP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := fingerprint.ErrorFunction(x, y)
		if e.Len() == 0 {
			b.Fatal("empty error function")
		}
	}
}

// BenchmarkMemoryTraffic times the protected memory system under load:
// requests serviced per simulated controller with continuous monitoring.
func BenchmarkMemoryTraffic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := divot.NewSystem(uint64(i)+1, divot.DefaultConfig())
		m, err := sys.NewMemorySystem("dimm0", divot.DefaultMemoryConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Calibrate(); err != nil {
			b.Fatal(err)
		}
		stream := sys.Stream("traffic")
		const reqs = 64
		for j := 0; j < reqs; j++ {
			m.Read(divot.MemAddress{Bank: stream.Intn(8), Row: stream.Intn(64), Col: stream.Intn(128)})
		}
		if err := m.Drain(reqs, 100*sim.Millisecond); err != nil {
			b.Fatal(err)
		}
		m.StopMonitor()
	}
}

// BenchmarkMonitorRound times one full two-endpoint monitoring round of a
// protected link.
func BenchmarkMonitorRound(b *testing.B) {
	sys := divot.NewSystem(7, divot.DefaultConfig())
	l := sys.MustNewLink("bus0")
	if err := l.Calibrate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if alerts, err := l.MonitorOnce(); err != nil {
			b.Fatal(err)
		} else if len(alerts) != 0 {
			b.Fatal("unexpected alert on clean link")
		}
	}
}

// BenchmarkMonitorRoundTelemetry measures the telemetry tax on the
// steady-state monitoring round: the same clean link with no sink attached
// versus a fully subscribed pipeline (metrics sink + event bus with a live
// subscriber). The delta is the per-round cost of instrumentation; the
// budget is <3%.
func BenchmarkMonitorRoundTelemetry(b *testing.B) {
	for _, mode := range []string{"nosink", "sink"} {
		b.Run(mode, func(b *testing.B) {
			sys := divot.NewSystem(7, divot.DefaultConfig())
			if mode == "sink" {
				reg := divot.NewMetricsRegistry()
				bus := divot.NewTelemetryBus()
				sub := bus.Subscribe(4096)
				defer sub.Close()
				go func() {
					for range sub.Events() {
					}
				}()
				sys.SetSink(divot.TelemetryFanout(divot.NewMetricsSink(reg), bus))
			}
			l := sys.MustNewLink("bus0")
			if err := l.Calibrate(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.MonitorOnce(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitorAll times one fleet monitoring round (6 calibrated links)
// at different worker counts — the headline operation of the parallel layer.
func BenchmarkMonitorAll(b *testing.B) {
	for _, par := range []int{1, 0} { // sequential vs one worker per CPU
		name := "sequential"
		if par == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			cfg := divot.DefaultConfig()
			cfg.Engine.Parallelism = par
			sys := divot.NewSystem(9, cfg)
			for i := 0; i < 6; i++ {
				if err := sys.MustNewLink(string(rune('a' + i))).Calibrate(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rounds, err := sys.MonitorAll(); err != nil {
					b.Fatal(err)
				} else if len(rounds) != 6 {
					b.Fatal("missing links")
				}
			}
		})
	}
}
